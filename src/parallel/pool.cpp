#include "parallel/pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/diagnostics.h"
#include "support/faultinject.h"
#include "support/text.h"
#include "telemetry/telemetry.h"

namespace skope::parallel {

namespace {

/// One worker's mutex-guarded task deque.
struct WorkerQueue {
  std::mutex mu;
  std::deque<size_t> tasks;

  bool popBack(size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.back();
    tasks.pop_back();
    return true;
  }

  bool stealFront(size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.front();
    tasks.pop_front();
    return true;
  }
};

struct BatchState {
  std::vector<WorkerQueue> queues;
  const std::function<void(size_t)>* task = nullptr;
  const WorkStealingPool::DoneFn* onDone = nullptr;
  const WorkStealingPool::ErrorFn* onError = nullptr;
  size_t total = 0;
  std::atomic<size_t> done{0};
  std::atomic<bool> abort{false};
  std::mutex errorMu;
  std::exception_ptr error;

  explicit BatchState(size_t workers) : queues(workers) {}

  void recordError() {
    std::lock_guard<std::mutex> lock(errorMu);
    if (!error) error = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  }

  void runOne(size_t idx) const {
    SKOPE_FAULT_POINT("pool/task",
                      throw Error("fault injected: pool/task (task " +
                                  std::to_string(idx) + ")"));
    (*task)(idx);
  }

  void notifyDone() {
    if (onDone != nullptr && *onDone) {
      (*onDone)(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
    }
  }

  void workerLoop(size_t self) {
    // Telemetry rides along only when enabled: the worker tallies its own
    // steals and the wall time NOT spent inside tasks (scheduling + queue
    // contention, i.e. idle/overhead) and flushes once at exit.
    const bool tel = telemetry::enabled();
    uint64_t steals = 0;
    uint64_t tasksRun = 0;
    auto loopStart = telemetry::Clock::now();
    telemetry::Clock::duration busy{0};

    size_t idx;
    while (!abort.load(std::memory_order_relaxed)) {
      if (!queues[self].popBack(idx)) {
        // Own deque drained: steal the oldest task from the first victim
        // that has one (scan order starts just after us to spread pressure).
        bool stole = false;
        for (size_t off = 1; off < queues.size() && !stole; ++off) {
          stole = queues[(self + off) % queues.size()].stealFront(idx);
        }
        if (!stole) break;  // batch drained
        ++steals;
      }
      try {
        if (tel) {
          auto t0 = telemetry::Clock::now();
          runOne(idx);
          busy += telemetry::Clock::now() - t0;
        } else {
          runOne(idx);
        }
        ++tasksRun;
        notifyDone();
      } catch (...) {
        // Barrier mode: hand the failure to the caller's handler and keep
        // draining — one bad task must not kill the batch. Without a
        // handler (or if the handler itself throws) fall back to the
        // abort-and-rethrow discipline.
        if (onError != nullptr && *onError) {
          try {
            (*onError)(idx, std::current_exception());
            ++tasksRun;
            notifyDone();
            continue;
          } catch (...) {
          }
        }
        recordError();
        break;
      }
    }

    if (tel) {
      auto idle = (telemetry::Clock::now() - loopStart) - busy;
      auto idleNs =
          std::chrono::duration_cast<std::chrono::nanoseconds>(idle).count();
      // current(), not global(): under a telemetry::Context the scheduling
      // metrics belong to the request that submitted the batch.
      auto& reg = telemetry::Registry::current();
      reg.counter("sweep/pool/tasks").add(tasksRun);
      reg.counter("sweep/pool/steals").add(steals);
      reg.counter("sweep/pool/idle_ns").add(static_cast<uint64_t>(idleNs));
      reg.histogram("sweep/pool/worker_idle_ms", {0.01, 0.1, 1, 10, 100, 1000})
          .observe(static_cast<double>(idleNs) / 1e6);
    }
  }
};

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
}

namespace {

/// Joins every spawned worker on scope exit, whatever path leaves run() —
/// a destructor firing with joinable threads alive would std::terminate.
struct Joiner {
  std::vector<std::thread>& crew;
  ~Joiner() {
    for (auto& t : crew) {
      if (t.joinable()) t.join();
    }
  }
};

}  // namespace

void WorkStealingPool::run(size_t numTasks, const std::function<void(size_t)>& task,
                           const DoneFn& onTaskDone, const ErrorFn& onTaskError) const {
  if (numTasks == 0) return;
  size_t workers = std::min<size_t>(static_cast<size_t>(threads_), numTasks);
  if (workers <= 1) {
    // Inline serial path, same failure semantics as the pooled one.
    BatchState state(1);
    state.task = &task;
    state.onDone = &onTaskDone;
    state.onError = &onTaskError;
    state.total = numTasks;
    for (size_t i = 0; i < numTasks; ++i) {
      try {
        state.runOne(i);
        state.notifyDone();
      } catch (...) {
        if (onTaskError) {
          onTaskError(i, std::current_exception());
          state.notifyDone();
          continue;
        }
        throw;
      }
    }
    return;
  }

  BatchState state(workers);
  state.task = &task;
  state.onDone = &onTaskDone;
  state.onError = &onTaskError;
  state.total = numTasks;
  // Deal the batch round-robin; deques are popped from the back, so push
  // order keeps low indices (often the cheap baseline configs) early.
  for (size_t i = 0; i < numTasks; ++i) {
    state.queues[i % workers].tasks.push_front(i);
  }

  // Capture the submitting thread's telemetry context BEFORE spawning:
  // workers install it first thing, so their spans, counters and flight
  // events land in the submitting request's registry instead of the global
  // one. The handoff is ordered by thread creation (everything the spawner
  // wrote happens-before the worker body) — TSan-clean by construction.
  telemetry::Registry* telemetryCtx = &telemetry::Registry::current();

  std::vector<std::thread> crew;
  crew.reserve(workers - 1);
  {
    Joiner joiner{crew};
    for (size_t w = 1; w < workers; ++w) {
      crew.emplace_back([&state, w, telemetryCtx] {
        telemetry::ScopedRegistry scope(telemetryCtx);
        telemetry::setThreadName(format("pool-worker-%zu", w));
        state.workerLoop(w);
      });
    }
    try {
      state.workerLoop(0);  // the calling thread is worker 0
    } catch (...) {
      // workerLoop contains its own barriers, but if anything still escapes
      // (e.g. the telemetry flush), record it — the Joiner must run with no
      // exception in flight before we rethrow.
      state.recordError();
    }
  }

  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace skope::parallel
