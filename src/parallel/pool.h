// A small work-stealing thread pool for index-addressed task batches.
//
// The canonical unit of work is "evaluate grid config #i" (the sweep engine)
// or "finalize region #r's histogram" (the reuse-distance analyzer) — tasks
// are pre-known, independent, and write only to their own result slot, so
// the pool API is deliberately batch-shaped: run(n, fn) invokes fn(0..n-1)
// exactly once each, from up to `threads` workers, and returns when all are
// done. Results are deterministic regardless of thread count because slot i
// never depends on which worker ran it. The pool lives in its own library
// (skope_parallel, above telemetry, below every pipeline stage) so both the
// sweep engine and the trace analyzer can share it without a cycle.
//
// Scheduling: the batch is dealt round-robin into one deque per worker;
// a worker pops its own deque from the back (LIFO, cache-warm) and, when
// empty, steals from the front of a victim's deque (FIFO, oldest first) —
// the classic Blumofe–Leiserson discipline, with plain mutex-guarded deques
// since tasks here are coarse (an entire machine evaluation, µs to seconds)
// and queue overhead is noise.
//
// Failure semantics are caller-selected. By default the first exception
// thrown by any task aborts the remaining batch (tasks already running
// finish) and is rethrown from run() on the caller's thread. When an
// onTaskError callback is supplied, run() instead becomes a per-task
// exception barrier: a throwing task is reported as (index, exception_ptr)
// and the batch keeps going — the discipline the fault-isolated sweep uses
// to turn one bad config into one failed row instead of a dead sweep. In
// both modes spawned workers are joined through an RAII guard, so a
// throwing task can never leave a joinable thread behind.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace skope::parallel {

class WorkStealingPool {
 public:
  /// Completion callback: onTaskDone(done, total) fires after each task
  /// finishes, from whichever worker ran it — so it MUST be thread-safe.
  /// `done` values 1..total are each delivered exactly once (not necessarily
  /// in order). Drives the sweep CLI's live progress/ETA line.
  using DoneFn = std::function<void(size_t done, size_t total)>;

  /// Per-task exception barrier: onTaskError(index, error) fires instead of
  /// aborting the batch when task(index) throws, from whichever worker ran
  /// it — so it MUST be thread-safe, and it must not throw (a throw from the
  /// handler falls back to the abort-and-rethrow path). The failed task
  /// still counts toward the completion callback.
  using ErrorFn = std::function<void(size_t index, std::exception_ptr error)>;

  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit WorkStealingPool(int threads = 0);

  [[nodiscard]] int threadCount() const { return threads_; }

  /// Runs task(0) ... task(numTasks-1), each exactly once, and blocks until
  /// all finish. With threadCount() == 1 everything runs inline on the
  /// calling thread in index order (the deterministic serial baseline).
  /// Otherwise threadCount() workers are spawned for the batch (the calling
  /// thread is worker 0).
  ///
  /// When telemetry is enabled the batch reports itself: counters
  /// "sweep/pool/tasks", "sweep/pool/steals" and "sweep/pool/idle_ns"
  /// (scheduling overhead summed over workers), the per-worker histogram
  /// "sweep/pool/worker_idle_ms", and a named span track per spawned worker.
  /// All of it lands in the SUBMITTING thread's telemetry::Registry::current()
  /// — the caller's registry is captured before the workers spawn and
  /// installed in each of them, so a batch run under a telemetry::Context
  /// attributes every worker's spans and metrics to that context.
  /// Fault injection: each task invocation passes the "pool/task" fault
  /// point (see support/faultinject.h) before running; an injected fault is
  /// indistinguishable from the task itself throwing.
  void run(size_t numTasks, const std::function<void(size_t)>& task,
           const DoneFn& onTaskDone = {}, const ErrorFn& onTaskError = {}) const;

 private:
  int threads_ = 1;
};

}  // namespace skope::parallel
