// Persistent content-addressed artifact store (compile-once, serve-many).
//
// Layout: one file per entry, `<root>/<k[0:2]>/<key>.blob`, where `key` is a
// 64-hex-char SHA-256 content address (see cache.h for the derivation). The
// two-char fan-out keeps directories small under large corpora.
//
// Container format (everything after it is the section payload):
//
//   offset  size  field
//   0       8     magic "SKOPEAR1"
//   8       4     format version (little-endian u32, kFormatVersion)
//   12      4     reserved, zero
//   16      8     payload size in bytes (u64)
//   24      8     FNV-1a 64 checksum of the payload (u64)
//   32      -     payload
//
// Concurrency contract:
//   * Writers are atomic: the blob is written to a unique temp file in the
//     same directory and rename(2)d over the final path. Two processes
//     racing on one key both produce valid files with identical content
//     (the key is a content address), and readers observe one of them —
//     never a torn intermediate.
//   * Eviction is unlink(2): a reader that already open(2)ed/mmap(2)ed the
//     file keeps a consistent view (POSIX keeps the inode alive); a reader
//     that arrives after the unlink sees a clean miss.
//   * load() verifies magic, version, size and checksum before handing the
//     payload out; any mismatch counts as artifact/corrupt, removes the bad
//     file, and reports a miss so the caller recomputes.
//
// Telemetry (docs/OBSERVABILITY.md): artifact/hit, artifact/miss,
// artifact/write, artifact/bytes (payload bytes served), artifact/evict,
// artifact/corrupt counters plus the artifact/store_bytes gauge.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace skope::artifact {

/// Store/blob format version. Bump on ANY change to the container or the
/// section encodings: the version participates in key derivation AND is
/// checked in the header, so old entries become clean misses, never
/// misdecodes.
constexpr uint32_t kFormatVersion = 1;

/// An open artifact file: mmap(2)ed read-only where available, with a plain
/// read(2)-into-buffer fallback (non-POSIX builds, mmap failure, or the
/// SKOPE_ARTIFACT_NO_MMAP=1 escape hatch for testing the fallback). Either
/// way data() is a stable buffer for the object's lifetime, so consumers can
/// keep zero-copy views into it via shared ownership.
class MappedBlob {
 public:
  ~MappedBlob();
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  /// Opens and maps `path`; nullptr when the file cannot be opened or read.
  static std::shared_ptr<const MappedBlob> open(const std::string& path);

  [[nodiscard]] const uint8_t* data() const { return data_; }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool mapped() const { return mapped_; }

 private:
  MappedBlob() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;               ///< true: munmap on destruction
  std::vector<uint8_t> fallback_;     ///< owns the bytes on the read() path
};

/// A verified load: `payload` points at the checksummed section bytes inside
/// `file`, which keeps the mapping alive (hand `file` to anything that keeps
/// zero-copy views, e.g. trace::MemoryTrace::backing).
struct LoadedBlob {
  std::shared_ptr<const MappedBlob> file;
  const uint8_t* payload = nullptr;
  size_t size = 0;
};

class ArtifactStore {
 public:
  /// Creates `root` (and fan-out subdirectories on demand). `maxBytes` > 0
  /// caps the store: every write runs an LRU eviction pass (see evictToFit).
  explicit ArtifactStore(std::string root, uint64_t maxBytes = 0);

  /// Loads and verifies the entry for `key` (64 hex chars). Returns nullopt
  /// on miss or on any verification failure (counted as artifact/corrupt,
  /// bad file removed). `corruptOut`, when non-null, is set true iff the
  /// entry existed but failed verification — callers surface the difference
  /// in provenance ("miss" vs "corrupt:recomputed").
  [[nodiscard]] std::optional<LoadedBlob> load(const std::string& key,
                                               bool* corruptOut = nullptr) const;

  /// Writes `payload` under `key` via temp file + atomic rename, then (when
  /// size-capped) runs an eviction pass. Const: only the disk mutates, so
  /// concurrent callers (sweep workers sharing one cache) are safe.
  void store(const std::string& key, const std::vector<uint8_t>& payload) const;

  /// Total bytes currently on disk under the root (also published as the
  /// artifact/store_bytes gauge).
  [[nodiscard]] uint64_t storeBytes() const;

  /// LRU eviction pass: while the store exceeds maxBytes, unlinks entries
  /// oldest-mtime-first (ties broken by path for determinism). Counted as
  /// artifact/evict per removed entry. No-op when maxBytes == 0.
  void evictToFit() const;

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] uint64_t maxBytes() const { return maxBytes_; }

  /// The on-disk path an entry for `key` lives at (exposed for tests and the
  /// bad-blob corpus, which plants hostile files directly).
  [[nodiscard]] std::string pathFor(const std::string& key) const;

 private:
  std::string root_;
  uint64_t maxBytes_ = 0;
};

}  // namespace skope::artifact
