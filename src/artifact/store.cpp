#include "artifact/store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "artifact/blob.h"
#include "support/diagnostics.h"
#include "support/log.h"
#include "telemetry/telemetry.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SKOPE_HAVE_MMAP 1
#endif

namespace skope::artifact {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'S', 'K', 'O', 'P', 'E', 'A', 'R', '1'};
constexpr size_t kHeaderSize = 32;

void count(const char* name, uint64_t n = 1) {
  if (telemetry::enabled()) telemetry::Registry::current().counter(name).add(n);
}

bool validKey(const std::string& key) {
  if (key.size() != 64) return false;
  for (char c : key) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool mmapDisabled() {
  const char* env = std::getenv("SKOPE_ARTIFACT_NO_MMAP");
  return env != nullptr && *env != '\0' && *env != '0';
}

}  // namespace

MappedBlob::~MappedBlob() {
#ifdef SKOPE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

std::shared_ptr<const MappedBlob> MappedBlob::open(const std::string& path) {
  auto blob = std::shared_ptr<MappedBlob>(new MappedBlob());
#ifdef SKOPE_HAVE_MMAP
  if (!mmapDisabled()) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st {};
    if (fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return nullptr;
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap(0) is EINVAL; an empty file can never verify, report it as an
      // open failure and let the store treat it as corrupt via size checks.
      ::close(fd);
      blob->size_ = 0;
      blob->data_ = reinterpret_cast<const uint8_t*>(&blob->size_);  // non-null
      return blob;
    }
    void* m = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the inode alive
    if (m != MAP_FAILED) {
      blob->data_ = static_cast<const uint8_t*>(m);
      blob->size_ = size;
      blob->mapped_ = true;
      return blob;
    }
    // fall through to the read() path
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  blob->fallback_.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  if (in.bad()) return nullptr;
  blob->data_ = blob->fallback_.data();
  blob->size_ = blob->fallback_.size();
  // An empty fallback buffer has a null data(); keep it non-null so callers
  // can form (ptr, 0) ranges safely.
  if (blob->data_ == nullptr) {
    blob->data_ = reinterpret_cast<const uint8_t*>(&blob->size_);
  }
  return blob;
}

ArtifactStore::ArtifactStore(std::string root, uint64_t maxBytes)
    : root_(std::move(root)), maxBytes_(maxBytes) {
  if (root_.empty()) throw Error("artifact store: empty cache directory");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw Error("artifact store: cannot create cache directory '" + root_ +
                "': " + ec.message());
  }
}

std::string ArtifactStore::pathFor(const std::string& key) const {
  if (!validKey(key)) {
    throw Error("artifact store: malformed key '" + key + "' (want 64 hex chars)");
  }
  return root_ + "/" + key.substr(0, 2) + "/" + key + ".blob";
}

std::optional<LoadedBlob> ArtifactStore::load(const std::string& key,
                                              bool* corruptOut) const {
  const std::string path = pathFor(key);
  if (corruptOut != nullptr) *corruptOut = false;
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    count("artifact/miss");
    return std::nullopt;
  }
  auto file = MappedBlob::open(path);
  if (file == nullptr) {
    // Vanished between the existence check and the open (eviction race):
    // indistinguishable from a miss, and just as safe.
    count("artifact/miss");
    return std::nullopt;
  }

  // Verify the container before a single payload byte is trusted. Any
  // failure here demotes the entry to a recompute — never a crash, never
  // stale data served.
  auto corrupt = [&](const char* why) -> std::optional<LoadedBlob> {
    if (corruptOut != nullptr) *corruptOut = true;
    count("artifact/corrupt");
    logging::info("artifact cache: %s at %s, recomputing", why, path.c_str());
    fs::remove(path, ec);  // best effort; a racing writer may have replaced it
    return std::nullopt;
  };
  if (file->size() < kHeaderSize) return corrupt("truncated header");
  const uint8_t* h = file->data();
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) return corrupt("bad magic");
  BlobReader header(h + sizeof(kMagic), kHeaderSize - sizeof(kMagic));
  uint32_t version = header.u32();
  (void)header.u32();  // reserved
  uint64_t payloadSize = header.u64();
  uint64_t checksum = header.u64();
  if (version != kFormatVersion) return corrupt("format version mismatch");
  if (payloadSize != file->size() - kHeaderSize) return corrupt("payload size mismatch");
  const uint8_t* payload = h + kHeaderSize;
  if (fnv1a64(payload, payloadSize) != checksum) return corrupt("checksum mismatch");

  count("artifact/hit");
  count("artifact/bytes", payloadSize);
  LoadedBlob out;
  out.file = std::move(file);
  out.payload = payload;
  out.size = static_cast<size_t>(payloadSize);
  return out;
}

void ArtifactStore::store(const std::string& key,
                          const std::vector<uint8_t>& payload) const {
  const std::string path = pathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) throw Error("artifact store: cannot create '" + path + "': " + ec.message());

  // Unique temp name in the SAME directory (rename must not cross devices).
  // pid + a process-local sequence keeps concurrent writers — threads and
  // processes alike — off each other's temp files.
  static std::atomic<uint64_t> seq{0};
#if defined(__unix__) || defined(__APPLE__)
  const auto pid = static_cast<unsigned long>(::getpid());
#else
  const auto pid = 0ul;
#endif
  const std::string tmp =
      format("%s.tmp.%lu.%llu", path.c_str(), pid,
             static_cast<unsigned long long>(seq.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("artifact store: cannot write '" + tmp + "'");
    BlobWriter header;
    header.u32(kFormatVersion);
    header.u32(0);  // reserved
    header.u64(payload.size());
    header.u64(fnv1a64(payload.data(), payload.size()));
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.data().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      throw Error("artifact store: short write to '" + tmp + "'");
    }
  }
  // The atomic publish: a complete, checksummed file replaces whatever was
  // at the final path in one step.
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("artifact store: cannot publish '" + path + "': " + ec.message());
  }
  count("artifact/write");
  if (maxBytes_ > 0) evictToFit();
  if (telemetry::enabled()) {
    telemetry::Registry::current().gauge("artifact/store_bytes")
        .set(static_cast<double>(storeBytes()));
  }
}

uint64_t ArtifactStore::storeBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec) && !ec) {
      total += static_cast<uint64_t>(it->file_size(ec));
    }
  }
  return total;
}

void ArtifactStore::evictToFit() const {
  if (maxBytes_ == 0) return;
  struct Entry {
    fs::file_time_type mtime;
    std::string path;
    uint64_t size;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || ec) continue;
    uint64_t size = static_cast<uint64_t>(it->file_size(ec));
    if (ec) continue;
    auto mtime = it->last_write_time(ec);
    if (ec) continue;
    total += size;
    entries.push_back({mtime, it->path().string(), size});
  }
  if (total <= maxBytes_) return;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  uint64_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= maxBytes_) break;
    if (!fs::remove(e.path, ec) || ec) continue;  // racing reader/evictor: fine
    total -= e.size;
    ++evicted;
  }
  if (evicted > 0) {
    count("artifact/evict", evicted);
    logging::info("artifact cache: evicted %llu entries to fit %llu bytes",
                  static_cast<unsigned long long>(evicted),
                  static_cast<unsigned long long>(maxBytes_));
  }
}

}  // namespace skope::artifact
