#include "artifact/cache.h"

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "artifact/blob.h"
#include "artifact/sha256.h"
#include "support/diagnostics.h"
#include "support/log.h"
#include "telemetry/telemetry.h"
#include "vm/interp.h"

namespace skope::artifact {

namespace fs = std::filesystem;

namespace {

// Section tags inside a front-end blob. New sections get new tags; decoders
// reject unknown tags (strict — the format version already gates evolution).
constexpr uint8_t kSectionProfile = 1;
constexpr uint8_t kSectionTrace = 2;

inline uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void encodeProfile(BlobWriter& w, const vm::ProfileData& p) {
  w.varint(p.branchSites.size());
  for (const auto& [site, stats] : p.branchSites) {
    w.varint(site);
    w.varint(stats.takenCount);
    w.varint(stats.total);
  }
  w.varint(p.libCalls.size());
  for (const auto& [key, count] : p.libCalls) {
    w.varint(key.first);
    w.varint(zigzag(key.second));
    w.varint(count);
  }
  w.varint(p.calls.size());
  for (const auto& [key, count] : p.calls) {
    w.varint(key.first);
    w.varint(zigzag(key.second));
    w.varint(count);
  }
  w.varint(p.opCounters.flat.size());
  for (uint64_t v : p.opCounters.flat) w.varint(v);
}

vm::ProfileData decodeProfile(BlobReader& r) {
  vm::ProfileData p;
  for (uint64_t i = 0, n = r.varint(); i < n; ++i) {
    auto site = static_cast<uint32_t>(r.varint());
    vm::BranchSiteStats stats;
    stats.takenCount = r.varint();
    stats.total = r.varint();
    p.branchSites.emplace(site, stats);
  }
  for (uint64_t i = 0, n = r.varint(); i < n; ++i) {
    auto region = static_cast<uint32_t>(r.varint());
    auto builtin = static_cast<int>(unzigzag(r.varint()));
    p.libCalls.emplace(std::make_pair(region, builtin), r.varint());
  }
  for (uint64_t i = 0, n = r.varint(); i < n; ++i) {
    auto region = static_cast<uint32_t>(r.varint());
    auto callee = static_cast<int>(unzigzag(r.varint()));
    p.calls.emplace(std::make_pair(region, callee), r.varint());
  }
  uint64_t flatSize = r.varint();
  // Every flat entry costs >= 1 encoded byte, so this bound rejects absurd
  // sizes before the allocation.
  if (flatSize > r.remaining()) {
    throw Error(format("artifact blob: op-counter table of %llu entries overruns "
                       "the %zu remaining bytes",
                       static_cast<unsigned long long>(flatSize), r.remaining()));
  }
  if (flatSize % vm::kNumOpClasses != 0) {
    throw Error("artifact blob: op-counter table is not a whole number of regions");
  }
  p.opCounters.flat.reserve(static_cast<size_t>(flatSize));
  for (uint64_t i = 0; i < flatSize; ++i) p.opCounters.flat.push_back(r.varint());
  r.expectEnd();
  return p;
}

void encodeTrace(BlobWriter& w, const trace::MemoryTrace& t) {
  w.varint(t.numRefs);
  w.varint(t.recordedRefs);
  w.u8(t.truncated ? 1 : 0);
  w.varint(t.dynamicInstrs);
  w.varint(t.mispredictsByRegion.size());
  for (const auto& [region, count] : t.mispredictsByRegion) {
    w.varint(region);
    w.varint(count);
  }
  // The encoded reference stream goes LAST so its bytes sit contiguously at
  // the blob's tail — the decoder hands out a zero-copy view into them.
  w.bytes(t.data(), t.sizeBytes());
}

trace::MemoryTrace decodeTrace(BlobReader& r, std::shared_ptr<const MappedBlob> file) {
  trace::MemoryTrace t;
  t.numRefs = r.varint();
  t.recordedRefs = r.varint();
  t.truncated = r.u8() != 0;
  t.dynamicInstrs = r.varint();
  for (uint64_t i = 0, n = r.varint(); i < n; ++i) {
    auto region = static_cast<uint32_t>(r.varint());
    t.mispredictsByRegion.emplace(region, r.varint());
  }
  BlobReader::Span stream = r.bytes();
  r.expectEnd();
  // Zero-copy: the view points into the mapped blob; `backing` keeps the
  // mapping alive for as long as any copy of the trace exists.
  t.view = stream.data;
  t.viewSize = stream.size;
  t.backing = std::move(file);
  return t;
}

void encodeHistograms(BlobWriter& w, const trace::ReuseHistograms& h) {
  w.u32(h.lineBytes);
  w.varint(h.totalRefs);
  w.varint(h.totalCold);
  w.varint(h.regions.size());
  for (const auto& rh : h.regions) {
    w.varint(rh.region);
    w.varint(rh.coldRefs);
    w.varint(rh.totalRefs);
    w.varint(rh.dist.size());
    for (const auto& [d, count] : rh.dist) {
      w.varint(d);
      w.varint(count);
    }
  }
}

std::unique_ptr<trace::ReuseHistograms> decodeHistograms(BlobReader& r) {
  auto h = std::make_unique<trace::ReuseHistograms>();
  h->lineBytes = r.u32();
  h->totalRefs = r.varint();
  h->totalCold = r.varint();
  uint64_t numRegions = r.varint();
  if (numRegions > r.remaining()) {
    throw Error(format("artifact blob: %llu histogram regions overrun the %zu "
                       "remaining bytes",
                       static_cast<unsigned long long>(numRegions), r.remaining()));
  }
  h->regions.reserve(static_cast<size_t>(numRegions));
  for (uint64_t i = 0; i < numRegions; ++i) {
    trace::RegionHistogram rh;
    rh.region = static_cast<uint32_t>(r.varint());
    rh.coldRefs = r.varint();
    rh.totalRefs = r.varint();
    uint64_t pairs = r.varint();
    if (pairs > r.remaining()) {
      throw Error(format("artifact blob: %llu distance pairs overrun the %zu "
                         "remaining bytes",
                         static_cast<unsigned long long>(pairs), r.remaining()));
    }
    rh.dist.reserve(static_cast<size_t>(pairs));
    for (uint64_t j = 0; j < pairs; ++j) {
      uint64_t d = r.varint();
      rh.dist.emplace_back(d, r.varint());
    }
    h->regions.push_back(std::move(rh));
  }
  r.expectEnd();
  return h;
}

/// Histogram entries get their own content address binding the front-end key
/// and the line size (and, via the front-end key, everything upstream).
std::string histogramKey(const std::string& frontendKey, uint32_t lineBytes) {
  Sha256 h;
  h.update(format("skope-reuse-hist-v%u\n", kFormatVersion));
  h.update(frontendKey);
  h.update(format("\nlineBytes=%u\n", lineBytes));
  return h.hex();
}

void encodeExactReplay(BlobWriter& w, const trace::ExactReplayArtifact& e) {
  w.u64(e.sizeBytes);
  w.u32(e.lineBytes);
  w.u32(e.assoc);
  w.varint(e.refsTotal);
  w.varint(e.regionMisses.size());
  for (double m : e.regionMisses) w.f64(m);
  w.varint(e.refsByRegion.size());
  for (uint64_t n : e.refsByRegion) w.varint(n);
}

std::unique_ptr<trace::ExactReplayArtifact> decodeExactReplay(BlobReader& r) {
  auto e = std::make_unique<trace::ExactReplayArtifact>();
  e->sizeBytes = r.u64();
  e->lineBytes = r.u32();
  e->assoc = r.u32();
  e->refsTotal = r.varint();
  uint64_t numMisses = r.varint();
  if (numMisses * 8 > r.remaining()) {
    throw Error(format("artifact blob: %llu replay miss entries overrun the %zu "
                       "remaining bytes",
                       static_cast<unsigned long long>(numMisses), r.remaining()));
  }
  e->regionMisses.reserve(static_cast<size_t>(numMisses));
  for (uint64_t i = 0; i < numMisses; ++i) e->regionMisses.push_back(r.f64());
  uint64_t numRefs = r.varint();
  if (numRefs > r.remaining()) {
    throw Error(format("artifact blob: %llu replay ref entries overrun the %zu "
                       "remaining bytes",
                       static_cast<unsigned long long>(numRefs), r.remaining()));
  }
  e->refsByRegion.reserve(static_cast<size_t>(numRefs));
  for (uint64_t i = 0; i < numRefs; ++i) e->refsByRegion.push_back(r.varint());
  r.expectEnd();
  return e;
}

/// Exact-replay entries bind the front-end key and the full level geometry.
std::string exactReplayKey(const std::string& frontendKey, uint64_t sizeBytes,
                           uint32_t lineBytes, uint32_t assoc) {
  Sha256 h;
  h.update(format("skope-exact-replay-v%u\n", kFormatVersion));
  h.update(frontendKey);
  h.update(format("\nsize=%llu;line=%u;assoc=%u\n",
                  static_cast<unsigned long long>(sizeBytes), lineBytes, assoc));
  return h.hex();
}

/// Adapter handed to ReuseDistanceAnalyzer: persists histograms under the
/// front-end's key. All failures are swallowed inside the cache methods.
class ReuseHook final : public trace::ReuseCacheHook {
 public:
  ReuseHook(const ArtifactCache* cache, std::string frontendKey)
      : cache_(cache), frontendKey_(std::move(frontendKey)) {}

  std::unique_ptr<trace::ReuseHistograms> load(uint32_t lineBytes) override {
    return cache_->loadHistograms(frontendKey_, lineBytes);
  }

  void store(const trace::ReuseHistograms& h) override {
    cache_->storeHistograms(frontendKey_, h);
  }

  std::unique_ptr<trace::ExactReplayArtifact> loadExactReplay(
      uint64_t sizeBytes, uint32_t lineBytes, uint32_t assoc) override {
    return cache_->loadExactReplay(frontendKey_, sizeBytes, lineBytes, assoc);
  }

  void storeExactReplay(const trace::ExactReplayArtifact& e) override {
    cache_->storeExactReplay(frontendKey_, e);
  }

 private:
  const ArtifactCache* cache_;
  std::string frontendKey_;
};

}  // namespace

const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOff: return "off";
    case Outcome::kHit: return "hit";
    case Outcome::kMiss: return "miss:stored";
    case Outcome::kCorrupt: return "corrupt:recomputed";
  }
  return "?";
}

ArtifactCache::ArtifactCache(std::string dir, uint64_t maxBytes)
    : store_(std::move(dir), maxBytes) {}

std::string ArtifactCache::frontendKey(const std::string& source,
                                       const std::map<std::string, double>& params,
                                       uint64_t seed, uint64_t maxOps, bool recordTrace,
                                       uint64_t traceMaxRefs) {
  Sha256 h;
  h.update(format("skope-frontend-v%u\n", kFormatVersion));
  h.update(format("source:%zu\n", source.size()));
  h.update(source);
  // std::map iterates sorted by name — canonical ordering for free. %.17g
  // round-trips every IEEE-754 double exactly.
  for (const auto& [name, value] : params) {
    h.update(format("\nparam:%s=%.17g", name.c_str(), value));
  }
  h.update(format("\nseed=%llu;maxOps=%llu;recordTrace=%d;traceMaxRefs=%llu\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(maxOps), recordTrace ? 1 : 0,
                  static_cast<unsigned long long>(traceMaxRefs)));
  return h.hex();
}

std::optional<FrontendArtifacts> ArtifactCache::loadFrontend(const std::string& key,
                                                             Outcome* outcomeOut) const {
  bool corrupt = false;
  auto blob = store_.load(key, &corrupt);
  if (!blob) {
    if (outcomeOut != nullptr) *outcomeOut = corrupt ? Outcome::kCorrupt : Outcome::kMiss;
    return std::nullopt;
  }
  try {
    BlobReader r(blob->payload, blob->size);
    if (r.u8() != kSectionProfile) throw Error("artifact blob: expected profile section");
    BlobReader pr = r.section();
    if (r.u8() != kSectionTrace) throw Error("artifact blob: expected trace section");
    BlobReader tr = r.section();
    r.expectEnd();
    FrontendArtifacts out;
    out.profile = decodeProfile(pr);
    out.trace = decodeTrace(tr, blob->file);
    if (outcomeOut != nullptr) *outcomeOut = Outcome::kHit;
    return out;
  } catch (const Error& e) {
    // The container checksum passed but the payload doesn't decode — a
    // format bug or targeted tampering. Same policy as container-level
    // corruption: count, drop the entry, recompute.
    if (telemetry::enabled()) {
      telemetry::Registry::current().counter("artifact/corrupt").add(1);
    }
    logging::info("artifact cache: undecodable payload for %s (%s), recomputing",
                  key.c_str(), e.what());
    std::error_code ec;
    fs::remove(store_.pathFor(key), ec);
    if (outcomeOut != nullptr) *outcomeOut = Outcome::kCorrupt;
    return std::nullopt;
  }
}

void ArtifactCache::storeFrontend(const std::string& key, const vm::ProfileData& profile,
                                  const trace::MemoryTrace& trace) const {
  try {
    BlobWriter profileSection;
    encodeProfile(profileSection, profile);
    BlobWriter traceSection;
    encodeTrace(traceSection, trace);
    BlobWriter w;
    w.u8(kSectionProfile);
    w.bytes(profileSection.data().data(), profileSection.data().size());
    w.u8(kSectionTrace);
    w.bytes(traceSection.data().data(), traceSection.data().size());
    store_.store(key, w.data());
  } catch (const Error& e) {
    logging::info("artifact cache: cannot store front-end blob: %s", e.what());
  }
}

std::unique_ptr<trace::ReuseHistograms> ArtifactCache::loadHistograms(
    const std::string& frontendKey, uint32_t lineBytes) const {
  const std::string key = histogramKey(frontendKey, lineBytes);
  auto blob = store_.load(key);
  if (!blob) return nullptr;
  try {
    BlobReader r(blob->payload, blob->size);
    auto h = decodeHistograms(r);
    return h;
  } catch (const Error& e) {
    if (telemetry::enabled()) {
      telemetry::Registry::current().counter("artifact/corrupt").add(1);
    }
    logging::info("artifact cache: undecodable histogram blob for %s (%s), recomputing",
                  key.c_str(), e.what());
    std::error_code ec;
    fs::remove(store_.pathFor(key), ec);
    return nullptr;
  }
}

void ArtifactCache::storeHistograms(const std::string& frontendKey,
                                    const trace::ReuseHistograms& h) const {
  try {
    BlobWriter w;
    encodeHistograms(w, h);
    store_.store(histogramKey(frontendKey, h.lineBytes), w.data());
  } catch (const Error& e) {
    logging::info("artifact cache: cannot store histogram blob: %s", e.what());
  }
}

std::unique_ptr<trace::ExactReplayArtifact> ArtifactCache::loadExactReplay(
    const std::string& frontendKey, uint64_t sizeBytes, uint32_t lineBytes,
    uint32_t assoc) const {
  const std::string key = exactReplayKey(frontendKey, sizeBytes, lineBytes, assoc);
  auto blob = store_.load(key);
  if (!blob) return nullptr;
  try {
    BlobReader r(blob->payload, blob->size);
    auto e = decodeExactReplay(r);
    if (e->sizeBytes != sizeBytes || e->lineBytes != lineBytes || e->assoc != assoc) {
      throw Error("artifact blob: replay geometry does not match its key");
    }
    return e;
  } catch (const Error& e) {
    if (telemetry::enabled()) {
      telemetry::Registry::current().counter("artifact/corrupt").add(1);
    }
    logging::info("artifact cache: undecodable replay blob for %s (%s), recomputing",
                  key.c_str(), e.what());
    std::error_code ec;
    fs::remove(store_.pathFor(key), ec);
    return nullptr;
  }
}

void ArtifactCache::storeExactReplay(const std::string& frontendKey,
                                     const trace::ExactReplayArtifact& e) const {
  try {
    BlobWriter w;
    encodeExactReplay(w, e);
    store_.store(exactReplayKey(frontendKey, e.sizeBytes, e.lineBytes, e.assoc),
                 w.data());
  } catch (const Error& err) {
    logging::info("artifact cache: cannot store replay blob: %s", err.what());
  }
}

std::unique_ptr<trace::ReuseCacheHook> ArtifactCache::makeReuseHook(
    std::string frontendKey) const {
  return std::make_unique<ReuseHook>(this, std::move(frontendKey));
}

std::string ArtifactCache::envDir() {
  const char* env = std::getenv("SKOPE_ARTIFACT_CACHE");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace skope::artifact
