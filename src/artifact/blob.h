// Strict bounds-checked binary blob encoding for cached artifacts.
//
// Artifacts are read back from disk, where anything can happen — truncation
// by a killed writer, bit rot, a stale entry from a future format. The
// reader therefore treats the byte stream as hostile: every primitive read
// is bounds-checked and throws Error on overrun, varints are capped at ten
// bytes, and section sizes are validated against the remaining payload
// before a sub-reader is handed out. A decode failure of ANY kind maps to
// "cache miss, recompute" in the store layer — corrupt data is never served.
//
// Encoding conventions: little-endian fixed-width integers, LEB128 varints
// for counts, doubles as IEEE-754 bit patterns, byte arrays length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/text.h"

namespace skope::artifact {

/// FNV-1a 64-bit — the container's payload checksum. Fast enough to verify
/// multi-MB trace blobs at load time, and reliably catches the real failure
/// modes (torn writes, truncation, flipped bytes). Collision *attacks* are
/// not in the threat model — the cache directory is the user's own disk.
[[nodiscard]] uint64_t fnv1a64(const uint8_t* data, size_t len);

/// Append-only binary writer.
class BlobWriter {
 public:
  void u8(uint8_t v) { out_.push_back(v); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (i * 8)));
  }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void varint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
  }
  /// Length-prefixed byte array.
  void bytes(const uint8_t* data, size_t len) {
    varint(len);
    out_.insert(out_.end(), data, data + len);
  }
  void str(const std::string& s) {
    bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  [[nodiscard]] const std::vector<uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<uint8_t> take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

/// Strict reader over a borrowed byte range. Throws Error("artifact blob
/// ...") on any overrun or malformed varint; never reads past `size`.
class BlobReader {
 public:
  BlobReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  [[nodiscard]] size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  /// The current read position (for zero-copy views into the blob).
  [[nodiscard]] const uint8_t* pos() const { return p_; }

  uint8_t u8() {
    need(1);
    return *p_++;
  }
  uint32_t u32() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(*p_++) << (i * 8);
    return v;
  }
  uint64_t u64() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(*p_++) << (i * 8);
    return v;
  }
  double f64() {
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  uint64_t varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1);
      uint8_t b = *p_++;
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw Error("artifact blob: varint exceeds 64 bits");
  }
  /// Validates the prefixed length against the remaining bytes, then returns
  /// a view (no copy) and advances past it.
  struct Span {
    const uint8_t* data;
    size_t size;
  };
  Span bytes() {
    uint64_t len = varint();
    if (len > remaining()) {
      throw Error(format("artifact blob: %llu-byte field overruns the %zu remaining "
                         "bytes",
                         static_cast<unsigned long long>(len), remaining()));
    }
    Span s{p_, static_cast<size_t>(len)};
    p_ += len;
    return s;
  }
  std::string str() {
    Span s = bytes();
    return std::string(reinterpret_cast<const char*>(s.data), s.size);
  }
  /// A bounds-checked sub-reader over the next length-prefixed section.
  BlobReader section() {
    Span s = bytes();
    return BlobReader(s.data, s.size);
  }
  /// Throws unless exactly everything was consumed — a decoder that leaves
  /// trailing bytes read a different format than the writer produced.
  void expectEnd() const {
    if (p_ != end_) {
      throw Error(format("artifact blob: %zu trailing bytes after decode", remaining()));
    }
  }

 private:
  void need(size_t n) const {
    if (remaining() < n) {
      throw Error(format("artifact blob truncated: need %zu bytes, %zu remain", n,
                         remaining()));
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace skope::artifact
