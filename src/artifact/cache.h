// High-level artifact cache: compile-once, serve-many (docs/ARTIFACTS.md).
//
// Sits on top of the content-addressed ArtifactStore and knows the three
// expensive cold-path artifacts by name:
//
//   * the BET profile annotations (vm::ProfileData) and the compressed
//     recorded memory trace (trace::MemoryTrace), bundled in ONE blob per
//     front-end build — they come from the same profiling run and are always
//     produced together;
//   * per-(front-end, line-size) reuse-distance histograms
//     (trace::ReuseHistograms) and per-(front-end, cache-geometry)
//     exact-replay miss counts (trace::ExactReplayArtifact), one blob each,
//     fed to the analyzer / cache model through the ReuseCacheHook interface
//     so the trace layer never links artifact.
//
// Key derivation (the correctness contract: a key hit IS a semantic hit).
// The front-end key is SHA-256 over, in order: the blob format version, the
// workload source bytes, the canonicalized parameter bindings (sorted by
// name, values printed with %.17g so every double round-trips), the VM seed,
// and the profiling knobs (maxOps, recordTrace, traceMaxRefs). Histogram
// keys additionally bind the line size. Changing ANY of these inputs changes
// the key; bumping kFormatVersion orphans every old entry (clean misses).
//
// Failure policy: corruption of any kind — torn container, bad checksum,
// payload that fails the strict BlobReader decode — counts artifact/corrupt,
// removes the entry, and reports a miss so callers recompute. The cache can
// lose work, never correctness.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "artifact/store.h"
#include "trace/reuse.h"
#include "trace/trace.h"
#include "vm/profile.h"

namespace skope::artifact {

/// How a front-end build interacted with the cache (exposed by
/// WorkloadFrontend::artifactProvenance and the sweep self-report).
enum class Outcome {
  kOff,      ///< no cache configured
  kHit,      ///< profile + trace served from the store
  kMiss,     ///< not present; recomputed and stored
  kCorrupt,  ///< present but failed verification; recomputed and stored
};

[[nodiscard]] const char* outcomeName(Outcome o);

/// The profiling-run outputs bundled in one front-end blob.
struct FrontendArtifacts {
  vm::ProfileData profile;
  trace::MemoryTrace trace;  ///< zero-copy view into the blob when loaded
};

/// Thread-safe facade over one on-disk store. Const methods may be called
/// concurrently from sweep workers; cross-process safety comes from the
/// store's atomic-rename writes.
class ArtifactCache {
 public:
  /// Opens (creating if needed) the store rooted at `dir`. `maxBytes` > 0
  /// enables the per-write LRU eviction pass.
  explicit ArtifactCache(std::string dir, uint64_t maxBytes = 0);

  /// The content address of one front-end build. Everything that determines
  /// the profiling run's outputs participates; see the header comment.
  [[nodiscard]] static std::string frontendKey(
      const std::string& source, const std::map<std::string, double>& params,
      uint64_t seed, uint64_t maxOps, bool recordTrace, uint64_t traceMaxRefs);

  /// Loads the profile + trace bundle for `key`. nullopt on miss or any
  /// verification/decode failure (counted, entry removed). On success the
  /// trace is a zero-copy view backed by the mapped blob. `outcomeOut`,
  /// when non-null, receives kHit / kMiss / kCorrupt.
  [[nodiscard]] std::optional<FrontendArtifacts> loadFrontend(
      const std::string& key, Outcome* outcomeOut = nullptr) const;

  /// Serializes and stores the bundle (best-effort: storage failures warn
  /// and are swallowed — the caller already holds the computed results).
  void storeFrontend(const std::string& key, const vm::ProfileData& profile,
                     const trace::MemoryTrace& trace) const;

  /// Loads the reuse-distance histograms for (frontendKey, lineBytes);
  /// nullptr on miss or decode failure.
  [[nodiscard]] std::unique_ptr<trace::ReuseHistograms> loadHistograms(
      const std::string& frontendKey, uint32_t lineBytes) const;

  /// Serializes and stores freshly computed histograms (best-effort).
  void storeHistograms(const std::string& frontendKey,
                       const trace::ReuseHistograms& h) const;

  /// Loads the exact-replay miss counts for (frontendKey, geometry);
  /// nullptr on miss or decode failure.
  [[nodiscard]] std::unique_ptr<trace::ExactReplayArtifact> loadExactReplay(
      const std::string& frontendKey, uint64_t sizeBytes, uint32_t lineBytes,
      uint32_t assoc) const;

  /// Serializes and stores a freshly replayed geometry (best-effort).
  void storeExactReplay(const std::string& frontendKey,
                        const trace::ExactReplayArtifact& e) const;

  /// An adapter feeding ReuseDistanceAnalyzer from this cache under the
  /// given front-end key. The cache must outlive the hook.
  [[nodiscard]] std::unique_ptr<trace::ReuseCacheHook> makeReuseHook(
      std::string frontendKey) const;

  /// The process environment's cache directory (SKOPE_ARTIFACT_CACHE), or
  /// empty. CLIs use it as the --artifact-cache default.
  [[nodiscard]] static std::string envDir();

  [[nodiscard]] const ArtifactStore& store() const { return store_; }
  [[nodiscard]] ArtifactStore& store() { return store_; }

 private:
  ArtifactStore store_;
};

}  // namespace skope::artifact
