// SHA-256 (FIPS 180-4) — the artifact store's content-addressing hash.
//
// Cache keys must be collision-resistant across *everything* that determines
// an artifact's bytes (source text, canonicalized options, format version):
// a weak hash would let two different workloads silently share an entry, and
// the cache's whole correctness contract is "a key hit IS a semantic hit".
// SHA-256 buys that guarantee at a cost that is irrelevant here — keys hash
// kilobytes of source once per front-end build, never per config.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace skope::artifact {

/// Incremental SHA-256. update() any number of times, then hex() once.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalizes and returns the digest as 64 lowercase hex characters. The
  /// object must not be updated afterwards.
  [[nodiscard]] std::string hex();

 private:
  void compress(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bitLen_ = 0;
  uint8_t buf_[64];
  size_t bufLen_ = 0;
};

/// One-shot convenience: SHA-256 of `data`, hex-encoded.
[[nodiscard]] std::string sha256Hex(std::string_view data);

}  // namespace skope::artifact
