#include "artifact/blob.h"

namespace skope::artifact {

uint64_t fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace skope::artifact
