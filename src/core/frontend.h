// WorkloadFrontend — the machine-independent half of the Figure-1 pipeline,
// built once and then shared read-only.
//
// The facade (CodesignFramework) historically rebuilt parse → sema → compile
// → translate → profile → BET lazily per instance, which made every
// (workload, machine) query pay the front-end again. For co-design sweeps —
// one workload projected onto hundreds of candidate machines — the front-end
// is invariant: only the roofline / hot-spot / hot-path stages depend on the
// machine. This class materializes that invariant as an immutable artifact:
//
//   * everything is built eagerly in the constructor,
//   * all accessors are const and the object is never written afterwards,
//   * any number of threads may evaluate machines against it concurrently
//     (see roofline::estimate's const overload and core::evaluateMachine).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "bet/bet.h"
#include "libmodel/libmodel.h"
#include "support/cancel.h"
#include "minic/ast.h"
#include "skeleton/skeleton.h"
#include "trace/trace.h"
#include "vm/bytecode.h"
#include "vm/profile.h"
#include "workloads/workloads.h"

namespace skope::artifact {
class ArtifactCache;
}

namespace skope::core {

/// Knobs for the front-end's single profiling run.
struct FrontendOptions {
  /// Dynamic instruction budget for the profiling run; 0 keeps the Vm
  /// default (the skopec / sweep CLIs expose this as --max-ops).
  uint64_t maxOps = 0;
  /// Capture the memory-reference trace during the profiling run (cheap:
  /// one extra tracer on the run that happens anyway). The trace feeds the
  /// reuse-distance cache model (--cache-model=reuse-dist).
  bool recordTrace = true;
  /// Reference cap for the trace recorder; beyond it the trace is marked
  /// truncated and trace consumers fall back to simulation.
  uint64_t traceMaxRefs = trace::kDefaultMaxRefs;
  /// Cooperative cancellation for the profiling run (--deadline-ms): the
  /// VM polls it every ~64K dynamic instructions and throws CancelledError.
  CancelToken cancel{};
  /// Persistent artifact cache (borrowed; --artifact-cache). When set, the
  /// profiling run is skipped on a key hit — profile and trace are restored
  /// from the store (the trace as a zero-copy view into the mapped blob) —
  /// and stored after a miss. See docs/ARTIFACTS.md.
  const artifact::ArtifactCache* artifacts = nullptr;
};

class WorkloadFrontend {
 public:
  /// Parses, checks, compiles, translates, profiles, annotates and builds
  /// the BET for `source`. Throws Error on any frontend failure.
  WorkloadFrontend(std::string name, std::string source,
                   std::map<std::string, double> params, uint64_t seed = 0x5eed,
                   const FrontendOptions& options = {});

  explicit WorkloadFrontend(const workloads::Workload& workload,
                            const FrontendOptions& options = {});

  WorkloadFrontend(const WorkloadFrontend&) = delete;
  WorkloadFrontend& operator=(const WorkloadFrontend&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::map<std::string, double>& params() const { return params_; }
  [[nodiscard]] uint64_t seed() const { return seed_; }
  [[nodiscard]] const minic::Program& program() const { return *prog_; }
  [[nodiscard]] const vm::Module& module() const { return mod_; }
  [[nodiscard]] const skel::SkeletonProgram& skeleton() const { return skeleton_; }
  [[nodiscard]] const vm::ProfileData& profile() const { return profile_; }

  /// The memory trace captured during the profiling run. Check usable()
  /// before building trace consumers: it is empty when the front-end was
  /// built with recordTrace == false, and truncated when the run exceeded
  /// traceMaxRefs.
  [[nodiscard]] const trace::MemoryTrace& memoryTrace() const { return trace_; }

  /// The shared, immutable BET. Per-machine estimator outputs live in side
  /// tables (roofline::BetAnnotations), never in these nodes.
  [[nodiscard]] const bet::Bet& bet() const { return bet_; }

  /// This build's artifact content address (computed whether or not a cache
  /// was configured — the sweep reuses it to key reuse-distance histograms).
  [[nodiscard]] const std::string& artifactKey() const { return artifactKey_; }

  /// How the build interacted with the artifact cache: "off", "hit",
  /// "miss:stored", or "corrupt:recomputed" (artifact::outcomeName).
  [[nodiscard]] const std::string& artifactProvenance() const {
    return artifactProvenance_;
  }

  /// Builds a private mutable copy of the BET (same skeleton, same input
  /// binding) for callers that use the in-place annotating estimator.
  [[nodiscard]] bet::Bet buildPrivateBet() const;

  /// The shared empirical library-function profile (§IV-C), computed once
  /// per process (thread-safe magic-static initialization).
  static const libmodel::LibProfile& libProfile();

 private:
  std::string name_;
  std::map<std::string, double> params_;
  uint64_t seed_;
  std::unique_ptr<minic::Program> prog_;
  vm::Module mod_;
  skel::SkeletonProgram skeleton_;
  vm::ProfileData profile_;
  trace::MemoryTrace trace_;
  bet::Bet bet_;
  std::string artifactKey_;
  std::string artifactProvenance_ = "off";
};

/// Resolves `target` as a bundled workload name (case-insensitive) or a
/// MiniC file path, applies hint-file and inline parameter overrides, and
/// builds the front-end. This is the loader shared by the skopec and sweep
/// CLIs. Throws Error when the target is neither.
std::shared_ptr<const WorkloadFrontend> loadFrontend(const std::string& target,
                                                     const std::string& paramSpec = "",
                                                     const std::string& hintPath = "",
                                                     const FrontendOptions& options = {});

}  // namespace skope::core
