// The machine-dependent half of the Figure-1 pipeline, as a pure function.
//
// evaluateMachine() runs the roofline projection, hot-spot selection and
// (optionally) hot-path extraction and the ground-truth simulator for ONE
// machine against a shared WorkloadFrontend. It writes nothing shared: the
// BET is read through the const estimator with a private side table, the
// simulator gets its own instance over the shared program/module. The sweep
// engine (src/sweep) calls this from many threads at once; single-shot
// callers can use it directly as a stateless alternative to the facade.
#pragma once

#include <optional>
#include <string>

#include "core/frontend.h"
#include "hotpath/hotpath.h"
#include "hotspot/quality.h"
#include "roofline/estimate.h"
#include "sim/profile_report.h"
#include "trace/cache_model.h"

namespace skope::core {

struct BackendOptions {
  roofline::RooflineParams rparams{};
  hotspot::SelectionCriteria criteria{};
  /// Extract the hot path and render it (fills MachineEvaluation::hotPathText).
  bool wantHotPath = false;
  /// Run the ground-truth timing simulator for this machine too, rank its
  /// profile and score the model selection against it (the paper's Prof
  /// columns and selection quality). Orders of magnitude more expensive than
  /// the analytic projection — its cost scales with the input data size.
  bool groundTruth = false;
  /// When set together with groundTruth, the "Prof" side is produced by
  /// trace replay against this model instead of re-running the simulator
  /// (--cache-model=reuse-dist). The model must be built from the
  /// front-end's own trace; prepare() it before concurrent evaluation.
  const trace::CacheModel* cacheModel = nullptr;
  /// When set together with cacheModel, the roofline's constant miss ratios
  /// are replaced per machine by the trace-predicted ones
  /// (--trace-roofline).
  bool traceInformedRoofline = false;
  /// Dynamic instruction budget for the simulated run; 0 keeps the default.
  uint64_t maxOps = 0;
};

/// Everything the back-end produces for one (workload, machine) pair.
struct MachineEvaluation {
  std::string machineName;

  roofline::ModelResult model;          ///< analytic projection ("Modl")
  roofline::BetAnnotations annotations; ///< per-BET-node costs for this machine
  hotspot::Ranking ranking;             ///< model blocks by projected time
  hotspot::Selection selection;         ///< greedy knapsack under the criteria

  std::string hotPathText;              ///< rendered hot path (wantHotPath)
  size_t hotPathNodes = 0;              ///< nodes on the merged hot path
  size_t hotSpotInstances = 0;          ///< BET instances of selected spots

  // Filled only when BackendOptions::groundTruth is set.
  std::optional<sim::ProfileReport> prof;
  std::optional<hotspot::Ranking> profRanking;
  std::optional<hotspot::Selection> profSelection;
  std::optional<hotspot::QualityResult> quality;
};

/// Thread-safe per-machine evaluation over a shared front-end.
MachineEvaluation evaluateMachine(const WorkloadFrontend& frontend,
                                  const MachineModel& machine,
                                  const BackendOptions& options = {});

}  // namespace skope::core
