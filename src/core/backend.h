// The machine-dependent half of the Figure-1 pipeline, as a pure function.
//
// evaluateMachine() runs the roofline projection, hot-spot selection and
// (optionally) hot-path extraction and the ground-truth simulator for ONE
// machine against a shared WorkloadFrontend. It writes nothing shared: the
// BET is read through the const estimator with a private side table, the
// simulator gets its own instance over the shared program/module. The sweep
// engine (src/sweep) calls this from many threads at once; single-shot
// callers can use it directly as a stateless alternative to the facade.
#pragma once

#include <optional>
#include <string>

#include "cachemodel/layercond.h"
#include "core/frontend.h"
#include "hotpath/hotpath.h"
#include "hotspot/quality.h"
#include "roofline/estimate.h"
#include "sim/profile_report.h"
#include "trace/cache_model.h"

namespace skope::core {

struct BackendOptions {
  roofline::RooflineParams rparams{};
  hotspot::SelectionCriteria criteria{};
  /// Extract the hot path and render it (fills MachineEvaluation::hotPathText).
  bool wantHotPath = false;
  /// Run the ground-truth timing simulator for this machine too, rank its
  /// profile and score the model selection against it (the paper's Prof
  /// columns and selection quality). Orders of magnitude more expensive than
  /// the analytic projection — its cost scales with the input data size.
  bool groundTruth = false;
  /// When set together with groundTruth, the "Prof" side is produced by
  /// trace replay against this model instead of re-running the simulator
  /// (--cache-model=reuse-dist). The model must be built from the
  /// front-end's own trace; prepare() it before concurrent evaluation.
  const trace::CacheModel* cacheModel = nullptr;
  /// Analytic layer-condition model (--cache-model=layer-cond): predicts the
  /// per-machine miss ratios symbolically, no trace required. When set
  /// together with traceInformedRoofline it takes precedence over cacheModel
  /// for the roofline substitution; ground truth still needs cacheModel (the
  /// analytic model carries no instruction timing to replay).
  const cachemodel::LayerConditionModel* layerModel = nullptr;
  /// When set together with cacheModel or layerModel, the roofline's
  /// constant miss ratios are replaced per machine by the predicted ones
  /// (--trace-roofline / --cache-model=layer-cond).
  bool traceInformedRoofline = false;
  /// Dynamic instruction budget for the simulated run; 0 keeps the default.
  uint64_t maxOps = 0;
  /// Combine loop for the batched grid path (GridBackend only): Auto picks
  /// the SIMD lane-parallel combine when eligible. All modes are
  /// bit-identical; Scalar exists for reference timing and the equivalence
  /// suite (see roofline::CombineMode).
  roofline::CombineMode combine = roofline::CombineMode::Auto;
  /// Cooperative cancellation: checked between back-end stages, inside the
  /// batched combine, and forwarded into the ground-truth simulator's VM.
  /// The default null token costs one pointer test per poll.
  CancelToken cancel{};
};

/// Everything the back-end produces for one (workload, machine) pair.
struct MachineEvaluation {
  std::string machineName;

  roofline::ModelResult model;          ///< analytic projection ("Modl")
  roofline::BetAnnotations annotations; ///< per-BET-node costs for this machine
  hotspot::Ranking ranking;             ///< model blocks by projected time
  hotspot::Selection selection;         ///< greedy knapsack under the criteria

  std::string hotPathText;              ///< rendered hot path (wantHotPath)
  size_t hotPathNodes = 0;              ///< nodes on the merged hot path
  size_t hotSpotInstances = 0;          ///< BET instances of selected spots

  // Filled only when BackendOptions::groundTruth is set.
  std::optional<sim::ProfileReport> prof;
  std::optional<hotspot::Ranking> profRanking;
  std::optional<hotspot::Selection> profSelection;
  std::optional<hotspot::QualityResult> quality;
};

/// Thread-safe per-machine evaluation over a shared front-end.
MachineEvaluation evaluateMachine(const WorkloadFrontend& frontend,
                                  const MachineModel& machine,
                                  const BackendOptions& options = {});

/// Node-major batched back-end for machine grids.
///
/// Where evaluateMachine() re-walks the BET per machine, a GridBackend walks
/// it once: the constructor factors the tree into machine-independent
/// roofline terms (roofline::BatchedEstimator), builds every config's
/// Roofline — memoizing the trace-informed cache prediction per distinct
/// (L1, LLC) geometry pair, counted as "sweep/memo-hit" / "sweep/memo-miss"
/// — and computes all per-config ModelResults in one structure-of-arrays
/// combine pass. evaluate(i) then finishes config i (hot-spot ranking and
/// selection, hot-path extraction, optional ground truth) from the
/// precomputed model; it is const and thread-safe, so a sweep pool can fan
/// the finish stage out across workers.
///
/// Equivalence contract: evaluate(i) returns the same MachineEvaluation
/// evaluateMachine(frontend, machines[i], options) computes — bit-identical
/// model numbers, rankings, selections and ground truth — except that the
/// per-node annotations side table and the rendered hotPathText are left
/// empty (grid consumers digest counts, not renderings; single-config
/// callers wanting the rendering use the scalar path).
class GridBackend {
 public:
  GridBackend(const WorkloadFrontend& frontend, std::vector<MachineModel> machines,
              const BackendOptions& options = {});

  [[nodiscard]] size_t size() const { return machines_.size(); }

  /// Finishes config i from the batched model. Thread-safe for distinct i.
  [[nodiscard]] MachineEvaluation evaluate(size_t i) const;

  /// Same, under a per-call token (e.g. a sweep worker's per-config child)
  /// that overrides options.cancel for this config's finish stage.
  [[nodiscard]] MachineEvaluation evaluate(size_t i, const CancelToken& cancel) const;

  /// The batched per-config projections, in construction order.
  [[nodiscard]] const std::vector<roofline::ModelResult>& models() const {
    return models_;
  }

 private:
  const WorkloadFrontend& frontend_;
  BackendOptions options_;
  std::vector<MachineModel> machines_;
  std::vector<roofline::ModelResult> models_;
};

/// Batched grid evaluation: one node-major pass for the roofline stage, then
/// the per-config finish, serially. Falls back to the scalar
/// evaluateMachine() path for single-config grids (which also fills the
/// annotations / hotPathText fields the batched path skips). Parallel
/// callers construct a GridBackend and fan evaluate(i) out themselves.
std::vector<MachineEvaluation> evaluateMachineGrid(const WorkloadFrontend& frontend,
                                                   const std::vector<MachineModel>& machines,
                                                   const BackendOptions& options = {});

}  // namespace skope::core
