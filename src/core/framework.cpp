#include "core/framework.h"

#include <fstream>
#include <sstream>

#include "machine/machine.h"
#include "report/table.h"
#include "sim/simulator.h"
#include "support/text.h"

namespace skope::core {

MachineModel machineByName(std::string_view name) {
  return skope::machineByName(name);  // canonical resolver lives in src/machine
}

std::map<std::string, double> parseParamSpec(std::string_view spec) {
  std::map<std::string, double> out;
  if (trim(spec).empty()) return out;
  for (std::string_view part : split(spec, ',')) {
    auto kv = split(part, '=');
    if (kv.size() != 2 || trim(kv[0]).empty()) {
      throw Error("bad parameter binding '" + std::string(part) +
                  "' (expected name=value)");
    }
    try {
      out[std::string(trim(kv[0]))] = std::stod(std::string(trim(kv[1])));
    } catch (const std::exception&) {
      throw Error("parameter '" + std::string(trim(kv[0])) + "' has a non-numeric value");
    }
  }
  return out;
}

std::map<std::string, double> parseHintText(std::string_view text) {
  std::map<std::string, double> out;
  uint32_t lineNo = 0;
  for (std::string_view line : split(text, '\n')) {
    ++lineNo;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto kv = split(line, '=');
    if (kv.size() != 2 || trim(kv[0]).empty()) {
      throw Error("hint file line " + std::to_string(lineNo) +
                  ": expected 'name = value', got '" + std::string(line) + "'");
    }
    try {
      out[std::string(trim(kv[0]))] = std::stod(std::string(trim(kv[1])));
    } catch (const std::exception&) {
      throw Error("hint file line " + std::to_string(lineNo) + ": non-numeric value in '" +
                  std::string(line) + "'");
    }
  }
  return out;
}

std::map<std::string, double> loadHintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read hint file '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parseHintText(ss.str());
}

std::string Analysis::summary(size_t topN) const {
  std::string out = format("=== %s on %s ===\n", workloadName.c_str(), machineName.c_str());

  report::Table table({"#", "Prof (measured)", "time%", "Modl (projected)", "time%"});
  for (size_t i = 0; i < topN; ++i) {
    std::vector<std::string> row(5);
    row[0] = std::to_string(i + 1);
    if (i < profRanking.size()) {
      row[1] = profRanking[i].label;
      row[2] = format("%.2f%%", profRanking[i].fraction * 100);
    }
    if (i < modelRanking.size()) {
      row[3] = modelRanking[i].label;
      row[4] = format("%.2f%%", modelRanking[i].fraction * 100);
    }
    table.addRow(std::move(row));
  }
  out += table.str();

  out += format(
      "hot spots: prof picked %zu (measured coverage %.1f%%), model picked %zu\n"
      "model spots measured coverage: %.1f%% | selection quality: %.1f%%\n",
      profSelection.spots.size(), quality.profCoverage * 100, modelSelection.spots.size(),
      quality.modelCoverage * 100, quality.quality * 100);
  return out;
}

CodesignFramework::CodesignFramework(const workloads::Workload& workload)
    : frontend_(std::make_shared<const WorkloadFrontend>(workload)) {}

CodesignFramework::CodesignFramework(std::string name, std::string source,
                                     std::map<std::string, double> params, uint64_t seed)
    : frontend_(std::make_shared<const WorkloadFrontend>(std::move(name), std::move(source),
                                                         std::move(params), seed)) {}

CodesignFramework::CodesignFramework(std::shared_ptr<const WorkloadFrontend> frontend)
    : frontend_(std::move(frontend)) {
  if (!frontend_) throw Error("CodesignFramework: null frontend");
}

const vm::ProfileData& CodesignFramework::profileData() { return frontend_->profile(); }

const skel::SkeletonProgram& CodesignFramework::skeleton() { return frontend_->skeleton(); }

bet::Bet& CodesignFramework::bet() {
  if (!bet_) {
    bet_ = frontend_->buildPrivateBet();
  }
  return *bet_;
}

const libmodel::LibProfile& CodesignFramework::libProfile() {
  return WorkloadFrontend::libProfile();
}

roofline::ModelResult CodesignFramework::project(const MachineModel& machine,
                                                 roofline::RooflineParams rparams) {
  roofline::Roofline model(machine, rparams);
  return roofline::estimate(bet(), model, &frontend_->module(), &libProfile().mixes);
}

const sim::SimResult& CodesignFramework::simResultOn(const MachineModel& machine) {
  auto it = simCache_.find(machine.name);
  if (it == simCache_.end()) {
    sim::Simulator simulator(frontend_->program(), frontend_->module(), machine,
                             &libProfile().mixes);
    it = simCache_.emplace(machine.name, simulator.run(frontend_->params(), frontend_->seed()))
             .first;
  }
  return it->second;
}

const sim::ProfileReport& CodesignFramework::profileOn(const MachineModel& machine) {
  auto it = reportCache_.find(machine.name);
  if (it == reportCache_.end()) {
    it = reportCache_
             .emplace(machine.name, sim::makeReport(simResultOn(machine), frontend_->module()))
             .first;
  }
  return it->second;
}

Analysis CodesignFramework::analyze(const MachineModel& machine,
                                    const hotspot::SelectionCriteria& criteria) {
  Analysis a;
  a.workloadName = frontend_->name();
  a.machineName = machine.name;
  a.prof = profileOn(machine);
  a.model = project(machine);
  a.profRanking = hotspot::rankingFromProfile(a.prof);
  a.modelRanking = hotspot::rankingFromModel(a.model);

  size_t totalInstrs = frontend_->module().totalStaticInstrs();
  a.profSelection = hotspot::selectHotSpots(a.profRanking, totalInstrs, criteria);
  a.modelSelection = hotspot::selectHotSpots(a.modelRanking, totalInstrs, criteria);

  auto measured = hotspot::fractionsByOrigin(a.profRanking);
  a.quality = hotspot::selectionQuality(a.modelSelection, a.profSelection, measured);
  return a;
}

std::string CodesignFramework::hotPathReport(const MachineModel& machine,
                                             const hotspot::SelectionCriteria& criteria) {
  auto model = project(machine);  // annotates the private BET copy for this machine
  auto ranking = hotspot::rankingFromModel(model);
  auto selection =
      hotspot::selectHotSpots(ranking, frontend_->module().totalStaticInstrs(), criteria);
  auto path = hotpath::extractHotPath(bet(), selection);
  std::string out =
      format("Hot path of %s on %s (%zu hot spot instances)\n", frontend_->name().c_str(),
             machine.name.c_str(), path.hotSpotInstances);
  out += hotpath::printHotPath(path, &frontend_->module());
  return out;
}

}  // namespace skope::core
