#include "core/framework.h"

#include <fstream>
#include <sstream>

#include "minic/parser.h"
#include "minic/sema.h"
#include "report/table.h"
#include "sim/simulator.h"
#include "support/text.h"
#include "vm/compiler.h"

namespace skope::core {

MachineModel machineByName(std::string_view name) {
  if (name == "bgq") return MachineModel::bgq();
  if (name == "xeon") return MachineModel::xeonE5_2420();
  if (name == "knl") return MachineModel::manycoreKnl();
  if (name == "arm") return MachineModel::armServer();
  throw Error("unknown machine '" + std::string(name) + "' (bgq, xeon, knl, arm)");
}

std::map<std::string, double> parseParamSpec(std::string_view spec) {
  std::map<std::string, double> out;
  if (trim(spec).empty()) return out;
  for (std::string_view part : split(spec, ',')) {
    auto kv = split(part, '=');
    if (kv.size() != 2 || trim(kv[0]).empty()) {
      throw Error("bad parameter binding '" + std::string(part) +
                  "' (expected name=value)");
    }
    try {
      out[std::string(trim(kv[0]))] = std::stod(std::string(trim(kv[1])));
    } catch (const std::exception&) {
      throw Error("parameter '" + std::string(trim(kv[0])) + "' has a non-numeric value");
    }
  }
  return out;
}

std::map<std::string, double> parseHintText(std::string_view text) {
  std::map<std::string, double> out;
  uint32_t lineNo = 0;
  for (std::string_view line : split(text, '\n')) {
    ++lineNo;
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto kv = split(line, '=');
    if (kv.size() != 2 || trim(kv[0]).empty()) {
      throw Error("hint file line " + std::to_string(lineNo) +
                  ": expected 'name = value', got '" + std::string(line) + "'");
    }
    try {
      out[std::string(trim(kv[0]))] = std::stod(std::string(trim(kv[1])));
    } catch (const std::exception&) {
      throw Error("hint file line " + std::to_string(lineNo) + ": non-numeric value in '" +
                  std::string(line) + "'");
    }
  }
  return out;
}

std::map<std::string, double> loadHintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read hint file '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return parseHintText(ss.str());
}

std::string Analysis::summary(size_t topN) const {
  std::string out = format("=== %s on %s ===\n", workloadName.c_str(), machineName.c_str());

  report::Table table({"#", "Prof (measured)", "time%", "Modl (projected)", "time%"});
  for (size_t i = 0; i < topN; ++i) {
    std::vector<std::string> row(5);
    row[0] = std::to_string(i + 1);
    if (i < profRanking.size()) {
      row[1] = profRanking[i].label;
      row[2] = format("%.2f%%", profRanking[i].fraction * 100);
    }
    if (i < modelRanking.size()) {
      row[3] = modelRanking[i].label;
      row[4] = format("%.2f%%", modelRanking[i].fraction * 100);
    }
    table.addRow(std::move(row));
  }
  out += table.str();

  out += format(
      "hot spots: prof picked %zu (measured coverage %.1f%%), model picked %zu\n"
      "model spots measured coverage: %.1f%% | selection quality: %.1f%%\n",
      profSelection.spots.size(), quality.profCoverage * 100, modelSelection.spots.size(),
      quality.modelCoverage * 100, quality.quality * 100);
  return out;
}

CodesignFramework::CodesignFramework(const workloads::Workload& workload)
    : name_(workload.name), params_(workload.params), seed_(workload.seed) {
  buildFrontend(workload.source);
}

CodesignFramework::CodesignFramework(std::string name, std::string source,
                                     std::map<std::string, double> params, uint64_t seed)
    : name_(std::move(name)), params_(std::move(params)), seed_(seed) {
  buildFrontend(source);
}

void CodesignFramework::buildFrontend(std::string_view source) {
  prog_ = minic::parseProgram(source, name_);
  minic::analyzeOrThrow(*prog_);
  mod_ = vm::compile(*prog_);
}

const vm::ProfileData& CodesignFramework::profileData() {
  if (!profile_) {
    profile_ = vm::profileRun(mod_, params_, seed_);
  }
  return *profile_;
}

const skel::SkeletonProgram& CodesignFramework::skeleton() {
  if (!skeleton_) {
    skeleton_ = translate::translateProgram(*prog_);
    translate::annotate(*skeleton_, profileData());
    auto unresolved = translate::unresolvedSites(*skeleton_);
    if (!unresolved.empty()) {
      throw Error(format("workload %s: %zu control-flow sites left unresolved after "
                         "profiling",
                         name_.c_str(), unresolved.size()));
    }
  }
  return *skeleton_;
}

bet::Bet& CodesignFramework::bet() {
  if (!bet_) {
    ParamEnv input(params_);
    bet_ = bet::buildBet(skeleton(), input);
  }
  return *bet_;
}

const libmodel::LibProfile& CodesignFramework::libProfile() {
  static const libmodel::LibProfile profile = libmodel::profileLibraryFunctions();
  return profile;
}

roofline::ModelResult CodesignFramework::project(const MachineModel& machine,
                                                 roofline::RooflineParams rparams) {
  roofline::Roofline model(machine, rparams);
  return roofline::estimate(bet(), model, &mod_, &libProfile().mixes);
}

const sim::SimResult& CodesignFramework::simResultOn(const MachineModel& machine) {
  auto it = simCache_.find(machine.name);
  if (it == simCache_.end()) {
    sim::Simulator simulator(*prog_, mod_, machine, &libProfile().mixes);
    it = simCache_.emplace(machine.name, simulator.run(params_, seed_)).first;
  }
  return it->second;
}

const sim::ProfileReport& CodesignFramework::profileOn(const MachineModel& machine) {
  auto it = reportCache_.find(machine.name);
  if (it == reportCache_.end()) {
    it = reportCache_.emplace(machine.name, sim::makeReport(simResultOn(machine), mod_)).first;
  }
  return it->second;
}

Analysis CodesignFramework::analyze(const MachineModel& machine,
                                    const hotspot::SelectionCriteria& criteria) {
  Analysis a;
  a.workloadName = name_;
  a.machineName = machine.name;
  a.prof = profileOn(machine);
  a.model = project(machine);
  a.profRanking = hotspot::rankingFromProfile(a.prof);
  a.modelRanking = hotspot::rankingFromModel(a.model);

  size_t totalInstrs = mod_.totalStaticInstrs();
  a.profSelection = hotspot::selectHotSpots(a.profRanking, totalInstrs, criteria);
  a.modelSelection = hotspot::selectHotSpots(a.modelRanking, totalInstrs, criteria);

  auto measured = hotspot::fractionsByOrigin(a.profRanking);
  a.quality = hotspot::selectionQuality(a.modelSelection, a.profSelection, measured);
  return a;
}

std::string CodesignFramework::hotPathReport(const MachineModel& machine,
                                             const hotspot::SelectionCriteria& criteria) {
  auto model = project(machine);  // annotates the BET nodes for this machine
  auto ranking = hotspot::rankingFromModel(model);
  auto selection = hotspot::selectHotSpots(ranking, mod_.totalStaticInstrs(), criteria);
  auto path = hotpath::extractHotPath(bet(), selection);
  std::string out = format("Hot path of %s on %s (%zu hot spot instances)\n", name_.c_str(),
                           machine.name.c_str(), path.hotSpotInstances);
  out += hotpath::printHotPath(path, &mod_);
  return out;
}

}  // namespace skope::core
