// CodesignFramework — the public facade wiring the paper's Figure-1 pipeline:
//
//   source ──(analysis engine)──> code skeleton + local branch profile
//          ──(BET builder)──────> execution-flow model
//          ──(roofline)─────────> per-block projections on a target machine
//          ──(hot region analysis)> hot spots + hot paths
//
// and, for validation, the ground-truth path:
//
//   source ──(timing simulator on the target machine)──> measured hot spots
//
// A typical co-design session:
//
//   CodesignFramework fw(workloads::sord());
//   auto bgq = fw.analyze(MachineModel::bgq());
//   std::cout << bgq.summary();
//   std::cout << fw.hotPathReport(MachineModel::bgq());
#pragma once

#include <memory>
#include <optional>

#include "bet/builder.h"
#include "core/frontend.h"
#include "hotpath/hotpath.h"
#include "hotspot/quality.h"
#include "libmodel/libmodel.h"
#include "minic/ast.h"
#include "roofline/estimate.h"
#include "sim/profile_report.h"
#include "translate/annotate.h"
#include "translate/translate.h"
#include "vm/profile.h"
#include "workloads/workloads.h"

namespace skope::core {

/// Resolves a machine by short name: "bgq", "xeon", "knl", "arm".
/// Deprecated spelling — the canonical resolver is skope::machineByName
/// (src/machine/machine.h); kept for source compatibility.
MachineModel machineByName(std::string_view name);

/// Parses a "N=64,STEPS=10"-style parameter binding (the inline form of the
/// paper's hint file). Whitespace around names/values is ignored.
std::map<std::string, double> parseParamSpec(std::string_view spec);

/// Parses a hint *file* (§III-B: "the input data sizes and distribution of
/// values ... summarized in a hint file provided by the developers"):
/// one `name = value` binding per line, `#` comments, blank lines ignored.
std::map<std::string, double> parseHintText(std::string_view text);

/// Reads and parses a hint file from disk. Throws Error if unreadable.
std::map<std::string, double> loadHintFile(const std::string& path);

/// End-to-end result of analyzing one workload on one machine.
struct Analysis {
  std::string workloadName;
  std::string machineName;

  sim::ProfileReport prof;            ///< ground-truth ("Prof")
  roofline::ModelResult model;        ///< analytic projection ("Modl")
  hotspot::Ranking profRanking;
  hotspot::Ranking modelRanking;
  hotspot::Selection profSelection;
  hotspot::Selection modelSelection;
  hotspot::QualityResult quality;     ///< Modl(m) vs Prof on measured times

  /// Human-readable comparison (rank table + coverage + quality).
  [[nodiscard]] std::string summary(size_t topN = 10) const;
};

class CodesignFramework {
 public:
  /// Parses, checks, compiles and translates the workload. Throws Error on
  /// any frontend failure.
  explicit CodesignFramework(const workloads::Workload& workload);

  /// Same, from raw MiniC source (params act as the hint file).
  CodesignFramework(std::string name, std::string source,
                    std::map<std::string, double> params, uint64_t seed = 0x5eed);

  /// Wraps an already-built (possibly shared) front-end. The facade only
  /// adds per-instance caches on top; the front-end stays immutable.
  explicit CodesignFramework(std::shared_ptr<const WorkloadFrontend> frontend);

  // --- stage accessors ---
  [[nodiscard]] const minic::Program& program() const { return frontend_->program(); }
  [[nodiscard]] const vm::Module& module() const { return frontend_->module(); }
  [[nodiscard]] const std::map<std::string, double>& params() const {
    return frontend_->params();
  }

  /// The shared machine-independent front-end artifact (skeleton + profile +
  /// BET), e.g. to hand to the sweep engine without rebuilding it.
  [[nodiscard]] const std::shared_ptr<const WorkloadFrontend>& frontend() const {
    return frontend_;
  }

  /// The annotated code skeleton (built once in the front-end — the paper's
  /// "profile once, project everywhere").
  const skel::SkeletonProgram& skeleton();
  const vm::ProfileData& profileData();

  /// This facade's private mutable BET copy (the front-end's shared BET is
  /// read-only); the per-node time annotations reflect the most recent
  /// project() call.
  bet::Bet& bet();

  /// Analytic projection for a machine (paper's Modl).
  roofline::ModelResult project(const MachineModel& machine,
                                roofline::RooflineParams params = {});

  /// Ground-truth simulation + ranked profile (paper's Prof). Cached per
  /// machine name.
  const sim::ProfileReport& profileOn(const MachineModel& machine);
  const sim::SimResult& simResultOn(const MachineModel& machine);

  /// Full model-vs-measurement comparison on one machine.
  Analysis analyze(const MachineModel& machine,
                   const hotspot::SelectionCriteria& criteria = {});

  /// Hot path for the model-selected spots on a machine (runs project()
  /// internally so BET annotations match the machine).
  std::string hotPathReport(const MachineModel& machine,
                            const hotspot::SelectionCriteria& criteria = {});

  /// The shared empirical library-function profile (§IV-C), computed once
  /// per process.
  static const libmodel::LibProfile& libProfile();

 private:
  std::shared_ptr<const WorkloadFrontend> frontend_;
  std::optional<bet::Bet> bet_;
  std::map<std::string, sim::SimResult> simCache_;
  std::map<std::string, sim::ProfileReport> reportCache_;
};

}  // namespace skope::core
