#include "core/backend.h"

#include "sim/simulator.h"

namespace skope::core {

MachineEvaluation evaluateMachine(const WorkloadFrontend& frontend,
                                  const MachineModel& machine,
                                  const BackendOptions& options) {
  MachineEvaluation ev;
  ev.machineName = machine.name;

  roofline::Roofline model(machine, options.rparams);
  ev.model = roofline::estimate(frontend.bet(), model, &frontend.module(),
                                &WorkloadFrontend::libProfile().mixes, &ev.annotations);
  ev.ranking = hotspot::rankingFromModel(ev.model);
  size_t totalInstrs = frontend.module().totalStaticInstrs();
  ev.selection = hotspot::selectHotSpots(ev.ranking, totalInstrs, options.criteria);

  if (options.wantHotPath) {
    auto path = hotpath::extractHotPath(frontend.bet(), ev.selection);
    ev.hotPathNodes = path.size();
    ev.hotSpotInstances = path.hotSpotInstances;
    ev.hotPathText = hotpath::printHotPath(path, &frontend.module(), &ev.annotations);
  }

  if (options.groundTruth) {
    sim::Simulator simulator(frontend.program(), frontend.module(), machine,
                             &WorkloadFrontend::libProfile().mixes);
    auto sim = simulator.run(frontend.params(), frontend.seed());
    ev.prof = sim::makeReport(sim, frontend.module());
    ev.profRanking = hotspot::rankingFromProfile(*ev.prof);
    ev.profSelection = hotspot::selectHotSpots(*ev.profRanking, totalInstrs, options.criteria);
    auto measured = hotspot::fractionsByOrigin(*ev.profRanking);
    ev.quality = hotspot::selectionQuality(ev.selection, *ev.profSelection, measured);
  }
  return ev;
}

}  // namespace skope::core
