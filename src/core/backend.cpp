#include "core/backend.h"

#include <map>
#include <tuple>

#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "trace/replay.h"

namespace skope::core {

namespace {

/// The machine-dependent stages downstream of the roofline projection:
/// hot-spot ranking + selection, optional hot-path extraction, optional
/// ground truth. Shared by the scalar and the batched paths so the two stay
/// equivalent by construction. `ev.model` must already be filled;
/// `renderHotPath` is off on the batched path (rendering needs the per-node
/// annotations side table, which only the scalar path builds).
void finishEvaluation(const WorkloadFrontend& frontend, const MachineModel& machine,
                      const BackendOptions& options, MachineEvaluation& ev,
                      bool renderHotPath, const CancelToken& cancel) {
  size_t totalInstrs = 0;
  {
    SKOPE_SPAN("backend/hotspot");
    cancel.throwIfExpired("backend/hotspot");
    ev.ranking = hotspot::rankingFromModel(ev.model);
    totalInstrs = frontend.module().totalStaticInstrs();
    ev.selection = hotspot::selectHotSpots(ev.ranking, totalInstrs, options.criteria);
  }

  if (options.wantHotPath) {
    SKOPE_SPAN("backend/hotpath");
    cancel.throwIfExpired("backend/hotpath");
    auto path = hotpath::extractHotPath(frontend.bet(), ev.selection);
    ev.hotPathNodes = path.size();
    ev.hotSpotInstances = path.hotSpotInstances;
    if (renderHotPath) {
      ev.hotPathText = hotpath::printHotPath(path, &frontend.module(), &ev.annotations);
    }
  }

  if (options.groundTruth) {
    SKOPE_SPAN("backend/ground-truth");
    cancel.throwIfExpired("backend/ground-truth");
    sim::SimResult sim;
    if (options.cacheModel != nullptr) {
      trace::ReplayInputs inputs{frontend.memoryTrace(), *options.cacheModel,
                                 frontend.profile(), &WorkloadFrontend::libProfile().mixes};
      sim = trace::replaySimulate(frontend.program(), machine, inputs);
    } else {
      sim::Simulator simulator(frontend.program(), frontend.module(), machine,
                               &WorkloadFrontend::libProfile().mixes);
      if (options.maxOps != 0) simulator.setMaxOps(options.maxOps);
      if (cancel.valid()) simulator.setCancelToken(cancel);
      sim = simulator.run(frontend.params(), frontend.seed());
    }
    ev.prof = sim::makeReport(sim, frontend.module());
    ev.profRanking = hotspot::rankingFromProfile(*ev.prof);
    ev.profSelection = hotspot::selectHotSpots(*ev.profRanking, totalInstrs, options.criteria);
    auto measured = hotspot::fractionsByOrigin(*ev.profRanking);
    ev.quality = hotspot::selectionQuality(ev.selection, *ev.profSelection, measured);
  }
}

/// Per-machine RooflineParams: the configured base, with the trace-predicted
/// miss ratios substituted in when --trace-roofline is on.
roofline::RooflineParams rooflineParamsFor(const BackendOptions& options,
                                           const trace::CachePrediction& pred) {
  roofline::RooflineParams rparams = options.rparams;
  rparams.l1MissRatio = pred.l1MissRate;
  rparams.dramMissRatio = pred.l1MissRate * pred.llcMissRate;
  return rparams;
}

/// True when a miss-ratio predictor is available for the roofline
/// substitution. The layer-condition model wins over trace replay when both
/// are set (it is the one the caller asked for; replay stays the ground-truth
/// side).
bool hasMissPredictor(const BackendOptions& options) {
  return options.traceInformedRoofline &&
         (options.layerModel != nullptr || options.cacheModel != nullptr);
}

trace::CachePrediction predictMisses(const BackendOptions& options,
                                     const MachineModel& machine) {
  if (options.layerModel != nullptr) return options.layerModel->evaluate(machine);
  return options.cacheModel->evaluate(machine);
}

}  // namespace

MachineEvaluation evaluateMachine(const WorkloadFrontend& frontend,
                                  const MachineModel& machine,
                                  const BackendOptions& options) {
  MachineEvaluation ev;
  ev.machineName = machine.name;

  {
    SKOPE_SPAN("backend/roofline");
    roofline::RooflineParams rparams = options.rparams;
    if (hasMissPredictor(options)) {
      rparams = rooflineParamsFor(options, predictMisses(options, machine));
    }
    roofline::Roofline model(machine, rparams);
    ev.model = roofline::estimate(frontend.bet(), model, &frontend.module(),
                                  &WorkloadFrontend::libProfile().mixes, &ev.annotations);
  }
  finishEvaluation(frontend, machine, options, ev, /*renderHotPath=*/true,
                   options.cancel);
  return ev;
}

GridBackend::GridBackend(const WorkloadFrontend& frontend,
                         std::vector<MachineModel> machines, const BackendOptions& options)
    : frontend_(frontend), options_(options), machines_(std::move(machines)) {
  SKOPE_SPAN("backend/batched-roofline");

  // Per-config rooflines. Trace-informed miss ratios depend only on the two
  // cache geometries, so the prediction is memoized per distinct
  // (L1, LLC) geometry pair across the whole grid: a freq × bandwidth grid
  // with 4 distinct geometries does 4 cache-model evaluations, not N.
  std::vector<roofline::Roofline> models;
  models.reserve(machines_.size());
  if (hasMissPredictor(options_)) {
    using GeometryKey = std::tuple<uint64_t, uint32_t, uint32_t,   // L1 size/line/assoc
                                   uint64_t, uint32_t, uint32_t>;  // LLC size/line/assoc
    std::map<GeometryKey, trace::CachePrediction> memo;
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (const MachineModel& m : machines_) {
      GeometryKey key{m.l1.sizeBytes,  m.l1.lineBytes,  m.l1.assoc,
                      m.llc.sizeBytes, m.llc.lineBytes, m.llc.assoc};
      auto it = memo.find(key);
      if (it == memo.end()) {
        ++misses;
        it = memo.emplace(key, predictMisses(options_, m)).first;
      } else {
        ++hits;
      }
      models.emplace_back(m, rooflineParamsFor(options_, it->second));
    }
    if (telemetry::enabled()) {
      auto& reg = telemetry::Registry::current();
      reg.counter("sweep/memo-hit").add(hits);
      reg.counter("sweep/memo-miss").add(misses);
    }
  } else {
    for (const MachineModel& m : machines_) {
      models.emplace_back(m, options_.rparams);
    }
  }

  roofline::BatchedEstimator estimator(frontend_.bet(), &frontend_.module(),
                                       &WorkloadFrontend::libProfile().mixes);
  models_ = estimator.estimateGrid(models, options_.cancel, options_.combine);
}

MachineEvaluation GridBackend::evaluate(size_t i) const {
  return evaluate(i, options_.cancel);
}

MachineEvaluation GridBackend::evaluate(size_t i, const CancelToken& cancel) const {
  MachineEvaluation ev;
  ev.machineName = machines_[i].name;
  ev.model = models_[i];
  finishEvaluation(frontend_, machines_[i], options_, ev, /*renderHotPath=*/false, cancel);
  return ev;
}

std::vector<MachineEvaluation> evaluateMachineGrid(const WorkloadFrontend& frontend,
                                                   const std::vector<MachineModel>& machines,
                                                   const BackendOptions& options) {
  std::vector<MachineEvaluation> out;
  out.reserve(machines.size());
  if (machines.size() <= 1) {
    // Single-config callers keep the scalar path (and with it the
    // annotations side table and the rendered hot path).
    for (const MachineModel& m : machines) {
      out.push_back(evaluateMachine(frontend, m, options));
    }
    return out;
  }
  GridBackend backend(frontend, machines, options);
  for (size_t i = 0; i < backend.size(); ++i) {
    out.push_back(backend.evaluate(i));
  }
  return out;
}

}  // namespace skope::core
