#include "core/backend.h"

#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "trace/replay.h"

namespace skope::core {

MachineEvaluation evaluateMachine(const WorkloadFrontend& frontend,
                                  const MachineModel& machine,
                                  const BackendOptions& options) {
  MachineEvaluation ev;
  ev.machineName = machine.name;

  size_t totalInstrs = 0;
  {
    SKOPE_SPAN("backend/roofline");
    roofline::RooflineParams rparams = options.rparams;
    if (options.traceInformedRoofline && options.cacheModel != nullptr) {
      trace::CachePrediction pred = options.cacheModel->evaluate(machine);
      rparams.l1MissRatio = pred.l1MissRate;
      rparams.dramMissRatio = pred.l1MissRate * pred.llcMissRate;
    }
    roofline::Roofline model(machine, rparams);
    ev.model = roofline::estimate(frontend.bet(), model, &frontend.module(),
                                  &WorkloadFrontend::libProfile().mixes, &ev.annotations);
  }
  {
    SKOPE_SPAN("backend/hotspot");
    ev.ranking = hotspot::rankingFromModel(ev.model);
    totalInstrs = frontend.module().totalStaticInstrs();
    ev.selection = hotspot::selectHotSpots(ev.ranking, totalInstrs, options.criteria);
  }

  if (options.wantHotPath) {
    SKOPE_SPAN("backend/hotpath");
    auto path = hotpath::extractHotPath(frontend.bet(), ev.selection);
    ev.hotPathNodes = path.size();
    ev.hotSpotInstances = path.hotSpotInstances;
    ev.hotPathText = hotpath::printHotPath(path, &frontend.module(), &ev.annotations);
  }

  if (options.groundTruth) {
    SKOPE_SPAN("backend/ground-truth");
    sim::SimResult sim;
    if (options.cacheModel != nullptr) {
      trace::ReplayInputs inputs{frontend.memoryTrace(), *options.cacheModel,
                                 frontend.profile(), &WorkloadFrontend::libProfile().mixes};
      sim = trace::replaySimulate(frontend.program(), machine, inputs);
    } else {
      sim::Simulator simulator(frontend.program(), frontend.module(), machine,
                               &WorkloadFrontend::libProfile().mixes);
      if (options.maxOps != 0) simulator.setMaxOps(options.maxOps);
      sim = simulator.run(frontend.params(), frontend.seed());
    }
    ev.prof = sim::makeReport(sim, frontend.module());
    ev.profRanking = hotspot::rankingFromProfile(*ev.prof);
    ev.profSelection = hotspot::selectHotSpots(*ev.profRanking, totalInstrs, options.criteria);
    auto measured = hotspot::fractionsByOrigin(*ev.profRanking);
    ev.quality = hotspot::selectionQuality(ev.selection, *ev.profSelection, measured);
  }
  return ev;
}

}  // namespace skope::core
