#include "core/frontend.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "artifact/cache.h"
#include "bet/builder.h"
#include "core/framework.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "support/log.h"
#include "support/text.h"
#include "telemetry/telemetry.h"
#include "translate/annotate.h"
#include "translate/translate.h"
#include "vm/compiler.h"

namespace skope::core {

WorkloadFrontend::WorkloadFrontend(std::string name, std::string source,
                                   std::map<std::string, double> params, uint64_t seed,
                                   const FrontendOptions& options)
    : name_(std::move(name)), params_(std::move(params)), seed_(seed) {
  SKOPE_SPAN("frontend/build");
  // The content address is computed unconditionally (it hashes kilobytes of
  // source, once) so the sweep can key reuse-distance histograms off it even
  // when the front-end blob itself was a miss.
  artifactKey_ = artifact::ArtifactCache::frontendKey(
      source, params_, seed_, options.maxOps, options.recordTrace,
      options.traceMaxRefs);
  {
    SKOPE_SPAN("frontend/parse");
    prog_ = minic::parseProgram(source, name_);
  }
  {
    SKOPE_SPAN("frontend/sema");
    // The sink follows the global --log-level: notes/warnings stream to
    // stderr per the threshold; errors still throw below.
    DiagSink diags;
    logging::configureSink(diags);
    minic::analyze(*prog_, diags);
    diags.throwIfErrors();
  }
  {
    SKOPE_SPAN("frontend/compile");
    mod_ = vm::compile(*prog_);
  }

  // The one profiling run — unless the artifact cache already holds this
  // key's profile + trace, in which case the run is skipped entirely (the
  // warm fast path; the restored trace is a zero-copy view into the blob).
  // When trace recording is on, the TraceRecorder rides along on the same
  // run via TeeTracer — the sweep's replay fast path costs no extra
  // execution here.
  bool restored = false;
  if (options.artifacts != nullptr) {
    artifact::Outcome outcome = artifact::Outcome::kMiss;
    if (auto cached = options.artifacts->loadFrontend(artifactKey_, &outcome)) {
      profile_ = std::move(cached->profile);
      trace_ = std::move(cached->trace);
      restored = true;
    }
    artifactProvenance_ = artifact::outcomeName(outcome);
  }
  if (!restored) {
    SKOPE_SPAN("frontend/profile");
    if (options.recordTrace) {
      trace::TraceRecorder recorder(options.traceMaxRefs);
      profile_ = vm::profileRun(mod_, params_, seed_, &recorder, options.maxOps,
                                [&](const vm::Vm& vm) { trace_ = recorder.finish(vm); },
                                options.cancel);
    } else {
      profile_ = vm::profileRun(mod_, params_, seed_, nullptr, options.maxOps, nullptr,
                                options.cancel);
    }
    if (options.artifacts != nullptr) {
      options.artifacts->storeFrontend(artifactKey_, profile_, trace_);
    }
  }

  {
    SKOPE_SPAN("frontend/skeleton");
    skeleton_ = translate::translateProgram(*prog_);
    translate::annotate(skeleton_, profile_);
    auto unresolved = translate::unresolvedSites(skeleton_);
    if (!unresolved.empty()) {
      throw Error(format("workload %s: %zu control-flow sites left unresolved after "
                         "profiling",
                         name_.c_str(), unresolved.size()));
    }
  }

  {
    SKOPE_SPAN("frontend/bet");
    ParamEnv input(params_);
    bet_ = bet::buildBet(skeleton_, input);
  }

  // Force the process-wide library profile here, before any sweep threads
  // exist, so concurrent evaluators only ever read it.
  {
    SKOPE_SPAN("frontend/lib-profile");
    (void)libProfile();
  }
}

WorkloadFrontend::WorkloadFrontend(const workloads::Workload& workload,
                                   const FrontendOptions& options)
    : WorkloadFrontend(workload.name, workload.source, workload.params, workload.seed,
                       options) {}

bet::Bet WorkloadFrontend::buildPrivateBet() const {
  ParamEnv input(params_);
  return bet::buildBet(skeleton_, input);
}

const libmodel::LibProfile& WorkloadFrontend::libProfile() {
  static const libmodel::LibProfile profile = libmodel::profileLibraryFunctions();
  return profile;
}

std::shared_ptr<const WorkloadFrontend> loadFrontend(const std::string& target,
                                                     const std::string& paramSpec,
                                                     const std::string& hintPath,
                                                     const FrontendOptions& options) {
  std::map<std::string, double> overrides;
  if (!hintPath.empty()) overrides = loadHintFile(hintPath);
  for (const auto& [k, v] : parseParamSpec(paramSpec)) overrides[k] = v;

  for (const auto* w : workloads::allWorkloads()) {
    std::string lower;
    for (char c : w->name) lower += static_cast<char>(std::tolower(c));
    if (target == lower || target == w->name) {
      auto params = w->params;
      for (const auto& [k, v] : overrides) params[k] = v;
      return std::make_shared<const WorkloadFrontend>(w->name, w->source, params, w->seed,
                                                      options);
    }
  }
  std::ifstream in(target);
  if (!in) throw Error("no bundled workload or readable file named '" + target + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return std::make_shared<const WorkloadFrontend>(target, ss.str(), overrides, 0x5eed,
                                                  options);
}

}  // namespace skope::core
