// Trace-once / replay-many: memory-reference capture (tentpole layer 1).
//
// A TraceRecorder subscribes to the VM's load/store events during the ONE
// profiling run the front-end already performs, and stores the per-region
// memory-reference stream in a compact delta-encoded byte stream. The stream
// is machine independent: the reuse-distance analyzer (src/trace/reuse.h)
// turns it into LRU stack-distance histograms, from which the analytic cache
// model (src/trace/cache_model.h) predicts hit rates for ANY cache geometry
// in microseconds — no per-config re-simulation.
//
// Encoding. The VM touches 8-byte elements in a flat virtual address space,
// so references are stored at word (8-byte) granularity; any line size >= 8
// bytes can be derived later. Each reference is one varint header
//
//   header = (zigzag(wordDelta) << 1) | regionChangedBit
//
// where wordDelta is relative to the PREVIOUS reference of the SAME region
// (inner loops stream with small strides, so same-region deltas compress far
// better than global ones). When regionChangedBit is set, a second varint
// carries the new region id. Sequential sweeps cost ~1 byte per reference.
//
// The recorder also captures the two remaining machine-independent inputs a
// ground-truth replay needs: per-region branch mispredictions under the
// simulator's 2-bit predictor (the predictor state machine depends only on
// the branch stream, never on the machine), and the total dynamic
// instruction count.
//
// Capture is capped (`maxRefs`): a run longer than the cap keeps recording
// counters but stops appending to the stream and marks the trace truncated,
// in which case consumers must fall back to full per-config simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "vm/interp.h"

namespace skope::trace {

/// Default reference cap: 64 Mi references (~2-4 bytes each once encoded).
constexpr uint64_t kDefaultMaxRefs = 64ull << 20;

/// The captured characterization of one profiling run.
///
/// The encoded stream lives either in `stream` (a freshly recorded trace
/// owns its bytes) or — when the trace was restored from the artifact cache
/// — as a zero-copy `view` into an mmap(2)ed blob kept alive by `backing`.
/// Consumers must read the stream through data()/sizeBytes(), which resolve
/// to whichever storage is active; copies of the trace share the backing.
struct MemoryTrace {
  std::vector<uint8_t> stream;   ///< delta-encoded reference records (owned)
  std::shared_ptr<const void> backing;  ///< keeps a cache blob's mapping alive
  const uint8_t* view = nullptr; ///< when non-null, the stream lives here
  size_t viewSize = 0;           ///< byte length of `view`

  [[nodiscard]] const uint8_t* data() const {
    return view != nullptr ? view : stream.data();
  }
  [[nodiscard]] size_t sizeBytes() const {
    return view != nullptr ? viewSize : stream.size();
  }

  uint64_t numRefs = 0;          ///< references observed (loads + stores)
  uint64_t recordedRefs = 0;     ///< references actually in the stream
  bool truncated = false;        ///< numRefs exceeded the recorder's cap

  /// Branch mispredictions per region under a 2-bit per-site predictor
  /// (identical to the ground-truth simulator's; machine independent).
  std::map<uint32_t, uint64_t> mispredictsByRegion;
  uint64_t dynamicInstrs = 0;    ///< VM instructions executed by the run

  [[nodiscard]] bool usable() const { return !truncated && recordedRefs > 0; }

  /// Decodes the stream in recording order. `fn(region, wordAddr)` receives
  /// the issuing region id and the 8-byte-granular address.
  void forEachRef(const std::function<void(uint32_t, uint64_t)>& fn) const;
};

/// VM tracer that fills a MemoryTrace. Attach to a profiling run (possibly
/// chained with a ProfileTracer via vm::TeeTracer), then call finish().
class TraceRecorder : public vm::Tracer {
 public:
  explicit TraceRecorder(uint64_t maxRefs = kDefaultMaxRefs);

  void onLoad(uint32_t region, uint64_t addr) override { record(region, addr); }
  void onStore(uint32_t region, uint64_t addr) override { record(region, addr); }
  void onBranch(uint32_t region, uint32_t site, bool taken) override;

  /// Moves the trace out; snapshots `vm`'s dynamic instruction count.
  [[nodiscard]] MemoryTrace finish(const vm::Vm& vm);

 private:
  void record(uint32_t region, uint64_t addr);

  MemoryTrace trace_;
  uint64_t maxRefs_;
  uint32_t lastRegion_ = ~0u;
  std::map<uint32_t, uint64_t> lastWordByRegion_;
  std::map<uint32_t, uint8_t> predictorStates_;  ///< 2-bit counters by site
};

}  // namespace skope::trace
