#include "trace/cache_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "telemetry/telemetry.h"

namespace skope::trace {

namespace {

/// Counts which modeling tier served a cache level: exact per-set LRU replay
/// vs the Smith binomial approximation over the reuse histograms.
void countDispatch(bool exact) {
  if (!telemetry::enabled()) return;
  telemetry::Registry::current()
      .counter(exact ? "cache-model/exact-replay" : "cache-model/binomial")
      .add(1);
}

}  // namespace

double setAssocHitProbability(uint64_t d, uint32_t sets, uint32_t assoc) {
  if (d < assoc) return 1.0;       // even an adversarial mapping cannot evict
  if (sets <= 1) return 0.0;       // fully associative: exact LRU step
  // Binomial(d, 1/sets) lower tail via the multiplicative term recurrence;
  // the first term is computed in log space so deep distances underflow to
  // the correct limit (certain miss) instead of NaN.
  double p = 1.0 / sets;
  double q = 1.0 - p;
  double term = std::exp(static_cast<double>(d) * std::log(q));
  double sum = term;
  for (uint32_t k = 0; k + 1 < assoc; ++k) {
    term *= (static_cast<double>(d) - k) / (k + 1.0) * (p / q);
    sum += term;
  }
  return std::min(1.0, sum);
}

namespace {

/// Expected misses of one region's histogram in a (sets, assoc) cache.
double expectedMisses(const RegionHistogram& rh, uint32_t sets, uint32_t assoc) {
  double misses = static_cast<double>(rh.coldRefs);
  for (const auto& [d, count] : rh.dist) {
    misses += static_cast<double>(count) * (1.0 - setAssocHitProbability(d, sets, assoc));
  }
  return misses;
}

}  // namespace

CacheModel::CacheModel(const MemoryTrace& trace, int histogramThreads, CancelToken cancel,
                       ReuseCacheHook* hook)
    : analyzer_(trace, histogramThreads, cancel, hook),
      cancel_(std::move(cancel)),
      hook_(hook) {}

bool CacheModel::usesExactReplay(const CacheLevelDesc& level) {
  return cacheGeometry(level).numSets <= kExactSetLimit;
}

void CacheModel::ensureExact(const std::vector<CacheLevelDesc>& levels) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LevelKey, CacheLevelDesc>> missing;
  for (const CacheLevelDesc& lvl : levels) {
    LevelKey key{lvl.sizeBytes, lvl.lineBytes, lvl.assoc};
    if (exact_.count(key)) continue;
    bool queued = false;
    for (const auto& m : missing) queued = queued || m.first == key;
    if (!queued) missing.emplace_back(key, lvl);
  }
  // Persisted replays short-circuit the decode pass per geometry: the
  // replay is a pure function of (trace, geometry), so a stored result
  // whose reference count matches the trace is the result. A mismatched or
  // partial entry is recomputed, never trusted.
  if (hook_ != nullptr && !missing.empty()) {
    std::vector<std::pair<LevelKey, CacheLevelDesc>> stillMissing;
    for (const auto& [key, lvl] : missing) {
      auto loaded = hook_->loadExactReplay(lvl.sizeBytes, lvl.lineBytes, lvl.assoc);
      if (loaded != nullptr && loaded->refsTotal == analyzer_.trace().recordedRefs &&
          loaded->regionMisses.size() <= loaded->refsByRegion.size()) {
        ExactLevel level;
        level.regionMisses = std::move(loaded->regionMisses);
        for (double m : level.regionMisses) level.misses += m;
        exact_.emplace(key, std::move(level));
        if (refsByRegion_.empty()) {
          refsByRegion_ = std::move(loaded->refsByRegion);
          refsTotal_ = loaded->refsTotal;
        }
      } else {
        stillMissing.emplace_back(key, lvl);
      }
    }
    missing = std::move(stillMissing);
  }
  if (missing.empty()) return;

  // One decode pass feeds every missing geometry (and, the first time
  // through, the per-region reference counts exact evaluations need).
  std::vector<Cache> caches;
  caches.reserve(missing.size());
  for (const auto& [key, lvl] : missing) caches.emplace_back(lvl);
  std::vector<std::vector<double>> misses(missing.size());
  const bool countRefs = refsByRegion_.empty();
  std::vector<uint64_t> refs;
  uint64_t total = 0;
  uint64_t seen = 0;
  analyzer_.trace().forEachRef([&](uint32_t region, uint64_t word) {
    if ((seen++ & kCancelCheckMask) == 0) cancel_.throwIfExpired("trace/cache-model");
    uint64_t addr = word * 8;  // traces are word (8-byte) granular
    if (countRefs) {
      if (region >= refs.size()) refs.resize(region + 1, 0);
      ++refs[region];
      ++total;
    }
    for (size_t i = 0; i < caches.size(); ++i) {
      if (!caches[i].access(addr)) {
        if (region >= misses[i].size()) misses[i].resize(region + 1, 0);
        ++misses[i][region];
      }
    }
  });
  if (countRefs) {
    refsByRegion_ = std::move(refs);
    refsTotal_ = total;
  }
  for (size_t i = 0; i < missing.size(); ++i) {
    ExactLevel level;
    level.regionMisses = std::move(misses[i]);
    for (double m : level.regionMisses) level.misses += m;
    if (hook_ != nullptr) {
      ExactReplayArtifact art;
      art.sizeBytes = missing[i].second.sizeBytes;
      art.lineBytes = missing[i].second.lineBytes;
      art.assoc = missing[i].second.assoc;
      art.regionMisses = level.regionMisses;
      art.refsByRegion = refsByRegion_;
      art.refsTotal = refsTotal_;
      hook_->storeExactReplay(art);
    }
    exact_.emplace(missing[i].first, std::move(level));
  }
}

const CacheModel::ExactLevel& CacheModel::exactLevel(const CacheLevelDesc& level) const {
  ensureExact({level});
  std::lock_guard<std::mutex> lock(mu_);
  return exact_.at(LevelKey{level.sizeBytes, level.lineBytes, level.assoc});
}

void CacheModel::prepare(const MachineModel& machine) const {
  std::vector<CacheLevelDesc> exact;
  for (const CacheLevelDesc* lvl : {&machine.l1, &machine.llc}) {
    if (usesExactReplay(*lvl)) {
      exact.push_back(*lvl);
    } else {
      (void)analyzer_.histograms(lvl->lineBytes);
    }
  }
  if (!exact.empty()) ensureExact(exact);
}

void CacheModel::prepare(const std::vector<MachineConfig>& configs) const {
  // Batch every distinct small-set geometry of the whole grid into one
  // replay pass; a cache-axis sweep shares a handful of L1 geometries
  // across all of its configs.
  std::vector<CacheLevelDesc> exact;
  for (const auto& cfg : configs) {
    for (const CacheLevelDesc* lvl : {&cfg.machine.l1, &cfg.machine.llc}) {
      if (usesExactReplay(*lvl)) {
        exact.push_back(*lvl);
      } else {
        (void)analyzer_.histograms(lvl->lineBytes);
      }
    }
  }
  if (!exact.empty()) ensureExact(exact);
}

CachePrediction CacheModel::evaluate(const MachineModel& machine) const {
  prepare(machine);  // memoized: a no-op after the first call per geometry

  CachePrediction out;
  // Each level takes whichever tier models it (exact replay for small set
  // counts, histogram + binomial otherwise); both enumerate the same region
  // set (every region that issued an access).
  countDispatch(usesExactReplay(machine.l1));
  if (usesExactReplay(machine.l1)) {
    const ExactLevel& e = exactLevel(machine.l1);
    std::vector<uint64_t> refs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      refs = refsByRegion_;
      out.accesses = refsTotal_;
    }
    for (uint32_t r = 0; r < refs.size(); ++r) {
      if (refs[r] == 0) continue;
      auto& region = out.regions[r];
      region.accesses = refs[r];
      region.l1Misses = r < e.regionMisses.size() ? e.regionMisses[r] : 0;
    }
  } else {
    CacheGeometry l1 = cacheGeometry(machine.l1);
    const ReuseHistograms& h1 = analyzer_.histograms(machine.l1.lineBytes);
    out.accesses = h1.totalRefs;
    for (const RegionHistogram& rh : h1.regions) {
      auto& region = out.regions[rh.region];
      region.accesses = rh.totalRefs;
      region.l1Misses = expectedMisses(rh, l1.numSets, machine.l1.assoc);
    }
  }

  // The global-stack approximation can only be served closer, never
  // further, than the smaller level predicts — hence the per-region clamp.
  countDispatch(usesExactReplay(machine.llc));
  if (usesExactReplay(machine.llc)) {
    const ExactLevel& e = exactLevel(machine.llc);
    for (auto& [id, region] : out.regions) {
      double m = id < e.regionMisses.size() ? e.regionMisses[id] : 0;
      region.llcMisses = std::min(m, region.l1Misses);
    }
  } else {
    CacheGeometry llc = cacheGeometry(machine.llc);
    const ReuseHistograms& h2 = analyzer_.histograms(machine.llc.lineBytes);
    for (const RegionHistogram& rh : h2.regions) {
      auto& region = out.regions[rh.region];
      region.llcMisses = std::min(expectedMisses(rh, llc.numSets, machine.llc.assoc),
                                  region.l1Misses);
    }
  }

  for (const auto& [id, region] : out.regions) {
    out.l1Misses += region.l1Misses;
    out.llcMisses += region.llcMisses;
  }
  if (out.accesses > 0) {
    out.l1MissRate = out.l1Misses / static_cast<double>(out.accesses);
  }
  if (out.l1Misses > 0) out.llcMissRate = out.llcMisses / out.l1Misses;
  return out;
}

}  // namespace skope::trace
