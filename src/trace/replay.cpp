#include "trace/replay.h"

#include <cmath>

#include "sim/vectorize.h"
#include "telemetry/telemetry.h"

namespace skope::trace {

sim::SimResult replaySimulate(const minic::Program& prog, const MachineModel& machine,
                              const ReplayInputs& in) {
  SKOPE_SPAN("trace/replay");
  sim::SimResult result;
  result.machineName = machine.name;
  result.freqGHz = machine.freqGHz;
  result.dynamicInstrs = in.trace.dynamicInstrs;

  sim::CostModel costs(machine);
  auto vectorized = sim::vectorizedLoops(prog, machine);

  sim::addComputeCycles(
      in.profile.opCounters, costs,
      [&vectorized](uint32_t region) {
        auto it = vectorized.find(region);
        return it != vectorized.end() && it->second;
      },
      result);

  for (const auto& [region, n] : in.trace.mispredictsByRegion) {
    result.regions[region].branchCycles +=
        static_cast<double>(n) * machine.mispredictPenalty;
  }

  CachePrediction pred = in.cacheModel.evaluate(machine);
  double penLlc = costs.memPenalty(CacheHierarchy::Level::Llc);
  double penMem = costs.memPenalty(CacheHierarchy::Level::Memory);
  for (const auto& [region, p] : pred.regions) {
    sim::RegionCost& rc = result.regions[region];
    rc.memCycles += (p.l1Misses - p.llcMisses) * penLlc + p.llcMisses * penMem;
    rc.l1Misses = static_cast<uint64_t>(std::llround(p.l1Misses));
    rc.llcMisses = static_cast<uint64_t>(std::llround(p.llcMisses));
    rc.loads = in.profile.opCounters.get(region, vm::OpClass::Load);
    rc.stores = in.profile.opCounters.get(region, vm::OpClass::Store);
  }
  result.l1MissRate = pred.l1MissRate;
  result.llcMissRate = pred.llcMissRate;

  // One bulk charge per builtin (the simulator charges per event; the sums
  // agree up to floating-point accumulation order).
  std::map<int, uint64_t> callsByBuiltin;
  for (const auto& [key, n] : in.profile.libCalls) callsByBuiltin[key.second] += n;
  for (const auto& [builtin, n] : callsByBuiltin) {
    sim::chargeLibCalls(builtin, n, costs, in.libMixes, result);
  }

  return result;
}

}  // namespace skope::trace
