#include "trace/reuse.h"

#include <algorithm>
#include <unordered_map>

#include "parallel/pool.h"
#include "support/diagnostics.h"

namespace skope::trace {

namespace {

/// Fenwick tree counting set positions — the implicit order-statistic tree.
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

  void add(size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of positions [0, i).
  [[nodiscard]] int64_t prefix(size_t i) const {
    int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(const MemoryTrace& trace, int threads,
                                             CancelToken cancel, ReuseCacheHook* hook)
    : trace_(trace), threads_(threads), cancel_(std::move(cancel)), hook_(hook) {
  if (!trace.usable()) {
    throw Error(trace.truncated
                    ? "reuse-distance analysis needs a complete trace, but this one "
                      "was truncated at its reference cap — raise the cap or fall "
                      "back to per-config simulation"
                    : "reuse-distance analysis: the trace recorded no references");
  }
}

const ReuseHistograms& ReuseDistanceAnalyzer::histograms(uint32_t lineBytes) const {
  if (lineBytes < 8 || (lineBytes & (lineBytes - 1)) != 0) {
    throw Error("reuse-distance histograms need a power-of-two line size >= 8 bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(lineBytes);
  if (it != cache_.end()) return *it->second;

  // Persisted histograms skip the O(N log N) walk entirely. Trust a loaded
  // entry only if it matches this trace's reference count — the artifact key
  // already binds it to the trace, but the check costs nothing and converts
  // any residual mismatch into a recompute rather than wrong predictions.
  if (hook_ != nullptr) {
    if (auto loaded = hook_->load(lineBytes);
        loaded != nullptr && loaded->lineBytes == lineBytes &&
        loaded->totalRefs == trace_.recordedRefs) {
      const ReuseHistograms& ref = *loaded;
      cache_.emplace(lineBytes, std::move(loaded));
      return ref;
    }
  }

  uint32_t wordShift = 0;
  for (uint32_t v = lineBytes / 8; v > 1; v >>= 1) ++wordShift;

  auto out = std::make_unique<ReuseHistograms>();
  out->lineBytes = lineBytes;
  out->totalRefs = trace_.recordedRefs;

  size_t n = static_cast<size_t>(trace_.recordedRefs);
  Fenwick lastTouches(n);
  std::unordered_map<uint64_t, size_t> lastPos;  // line -> position of last touch
  lastPos.reserve(n / 4 + 16);
  // Per-region accumulation: distance -> count. Region ids are sparse AST
  // node ids, so gather in a map keyed by region first. With threads_ > 1
  // the accumulate-and-sort work is deferred: the walk only appends each
  // distance to its region's vector, and the histogram construction shards
  // per region across a pool afterwards. The walk itself cannot shard — a
  // reference's distance counts *every* region's intervening lines.
  bool sharded = threads_ > 1;
  std::map<uint32_t, std::unordered_map<uint64_t, uint64_t>> hist;
  std::map<uint32_t, std::vector<uint64_t>> rawDist;
  std::map<uint32_t, RegionHistogram> partial;

  size_t t = 0;
  trace_.forEachRef([&](uint32_t region, uint64_t wordAddr) {
    if ((t & kCancelCheckMask) == 0) cancel_.throwIfExpired("trace/reuse");
    uint64_t line = wordAddr >> wordShift;
    RegionHistogram& rh = partial[region];
    rh.region = region;
    ++rh.totalRefs;
    auto prev = lastPos.find(line);
    if (prev == lastPos.end()) {
      ++rh.coldRefs;
      ++out->totalCold;
    } else {
      // Distinct lines touched strictly after the previous reference: the
      // set positions in (prev, t).
      auto d = static_cast<uint64_t>(lastTouches.prefix(t) -
                                     lastTouches.prefix(prev->second + 1));
      if (sharded) {
        rawDist[region].push_back(d);
      } else {
        ++hist[region][d];
      }
      lastTouches.add(prev->second, -1);
    }
    lastTouches.add(t, +1);
    lastPos[line] = t;
    ++t;
  });

  if (sharded) {
    out->regions.reserve(partial.size());
    for (auto& [region, rh] : partial) out->regions.push_back(std::move(rh));
    std::vector<const std::vector<uint64_t>*> work(out->regions.size(), nullptr);
    for (size_t i = 0; i < out->regions.size(); ++i) {
      auto raw = rawDist.find(out->regions[i].region);
      if (raw != rawDist.end()) work[i] = &raw->second;
    }
    parallel::WorkStealingPool pool(threads_);
    pool.run(out->regions.size(), [&](size_t i) {
      cancel_.throwIfExpired("trace/reuse");
      if (work[i] == nullptr) return;  // all-cold region
      std::unordered_map<uint64_t, uint64_t> acc;
      acc.reserve(work[i]->size() / 4 + 8);
      for (uint64_t d : *work[i]) ++acc[d];
      auto& dist = out->regions[i].dist;
      dist.assign(acc.begin(), acc.end());
      std::sort(dist.begin(), dist.end());
    });
  } else {
    for (auto& [region, rh] : partial) {
      auto hit = hist.find(region);
      if (hit != hist.end()) {
        rh.dist.assign(hit->second.begin(), hit->second.end());
        std::sort(rh.dist.begin(), rh.dist.end());
      }
      out->regions.push_back(std::move(rh));
    }
  }

  if (hook_ != nullptr) hook_->store(*out);
  const ReuseHistograms& ref = *out;
  cache_.emplace(lineBytes, std::move(out));
  return ref;
}

}  // namespace skope::trace
