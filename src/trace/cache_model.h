// Analytic cache-hierarchy evaluation from reuse-distance histograms
// (tentpole layer 3).
//
// Given the per-region stack-distance histograms of one trace, predicts the
// L1 / LLC hit behavior of ANY CacheLevelDesc geometry in microseconds:
//
//   * Fully-associative-equivalent capacity: by the stack property, a
//     reference of distance d hits an LRU cache of C lines iff d < C.
//   * Set associativity (S sets, A ways), large S: Smith's classic
//     correction — the d intervening distinct lines spread over the sets;
//     the reference hits iff fewer than A of them land in its own set.
//     Under the uniform-mapping assumption the count is Binomial(d, 1/S), so
//       pHit(d) = P[Binomial(d, 1/S) <= A - 1].
//   * Set associativity, small S (<= kExactSetLimit, i.e. L1-class levels
//     and fully-associative caches): the uniform-mapping assumption breaks
//     down badly. The VM lays arrays out page-aligned, and an L1's index
//     bits sit inside the page offset, so element i of EVERY array maps to
//     the same set — lockstep conflict misses with uniform set popularity
//     but perfectly correlated timing, invisible to any binomial (CFD on
//     BG/Q: 4% absolute L1 error). Because an A-way LRU set is just an
//     A-deep LRU stack, the per-set stack distances ARE a capped LRU replay:
//     one pass with a Cache per distinct small geometry gives the exact
//     per-region miss counts. Results are memoized per (size, line, assoc),
//     and prepare() batches every distinct geometry of a sweep into a single
//     decode pass — a cache-axis grid shares a handful of L1 geometries
//     across all of its configs.
//   * Hierarchy: both levels are evaluated against the same global stream
//     (an inclusive-LRU approximation of the simulator's L1-filtered LLC;
//     the discrepancy is part of the documented accuracy envelope, see
//     docs/TRACE.md).
//
// Predictions are expected values, so per-region miss counts are fractional
// on the histogram tier (exact integers on the replay tier); consumers round
// when they need integers. Everything here is const and deterministic —
// sweep workers share one CacheModel across threads; memoization is guarded
// by a mutex, and prepare() before fan-out removes all contention.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "machine/cache.h"
#include "machine/grid.h"
#include "trace/reuse.h"

namespace skope::trace {

/// Predicted cache behavior of one machine's hierarchy on the traced run.
struct CachePrediction {
  struct Region {
    uint64_t accesses = 0;  ///< references issued by this region
    double l1Misses = 0;    ///< expected L1 misses (cold included)
    double llcMisses = 0;   ///< expected misses of BOTH levels (to DRAM)
  };
  std::map<uint32_t, Region> regions;

  uint64_t accesses = 0;   ///< total traced references
  double l1Misses = 0;
  double llcMisses = 0;
  double l1MissRate = 0;   ///< l1Misses / accesses
  double llcMissRate = 0;  ///< llcMisses / L1 misses (= LLC accesses), as
                           ///< the simulator reports it
};

/// One CacheModel per trace; evaluate() per candidate machine.
class CacheModel {
 public:
  /// `trace` must outlive the model and be usable() (throws Error otherwise,
  /// via ReuseDistanceAnalyzer). `histogramThreads` > 1 shards the
  /// analyzer's per-region histogram construction (see ReuseDistanceAnalyzer);
  /// predictions are identical for any value. `cancel` interrupts the
  /// histogram pass and the replay decode pass with CancelledError. `hook`
  /// (borrowed, may be null; must outlive the model) persists computed
  /// histograms AND exact-replay miss counts through the artifact cache, so
  /// a warm sweep pays neither the O(N log N) histogram pass nor the O(N)
  /// per-geometry replay decode.
  explicit CacheModel(const MemoryTrace& trace, int histogramThreads = 1,
                      CancelToken cancel = {}, ReuseCacheHook* hook = nullptr);

  /// Predicts hit rates for `machine`'s L1 + LLC geometry. The first call
  /// for a new line size pays the O(N log N) histogram pass; further calls
  /// are pure histogram arithmetic (microseconds).
  [[nodiscard]] CachePrediction evaluate(const MachineModel& machine) const;

  /// Precomputes everything a set of machines will need — histograms per
  /// line size, plus ONE decode pass covering every distinct small-set
  /// geometry — so concurrent evaluate() calls never contend on a mutex.
  void prepare(const std::vector<MachineConfig>& configs) const;
  void prepare(const MachineModel& machine) const;

  /// Levels with at most this many sets are evaluated by exact per-set LRU
  /// replay instead of the binomial correction (see file comment).
  static constexpr uint32_t kExactSetLimit = 512;

  /// True when `level` takes the exact-replay tier rather than the
  /// histogram + binomial tier.
  [[nodiscard]] static bool usesExactReplay(const CacheLevelDesc& level);

  [[nodiscard]] const ReuseDistanceAnalyzer& analyzer() const { return analyzer_; }

 private:
  /// Exact per-region miss counts of one replayed level geometry.
  struct ExactLevel {
    std::vector<double> regionMisses;  ///< indexed by region id
    double misses = 0;
  };
  using LevelKey = std::tuple<uint64_t, uint32_t, uint32_t>;  // size, line, assoc

  /// Replays the trace once for every listed geometry not yet memoized.
  void ensureExact(const std::vector<CacheLevelDesc>& levels) const;
  const ExactLevel& exactLevel(const CacheLevelDesc& level) const;

  ReuseDistanceAnalyzer analyzer_;
  CancelToken cancel_;
  ReuseCacheHook* hook_ = nullptr;  ///< also persists exact-replay results
  mutable std::mutex mu_;
  mutable std::map<LevelKey, ExactLevel> exact_;
  mutable std::vector<uint64_t> refsByRegion_;  ///< filled by the first replay pass
  mutable uint64_t refsTotal_ = 0;
};

/// P[Binomial(d, 1/sets) <= assoc - 1] — the probability that a reference at
/// stack distance `d` hits a cache with `sets` sets of `assoc` ways.
/// Exposed for tests; exact step function when sets == 1.
double setAssocHitProbability(uint64_t d, uint32_t sets, uint32_t assoc);

}  // namespace skope::trace
