// Exact LRU stack-distance (reuse-distance) analysis (tentpole layer 2).
//
// For every reference in a recorded trace, the stack distance is the number
// of DISTINCT cache lines touched since the previous reference to the same
// line (first touches are "cold", distance infinity). Mattson's stack
// property makes this the universal cache characterization: a fully
// associative LRU cache of C lines hits a reference iff its distance d < C,
// for EVERY C at once. One O(N log N) pass therefore answers "how does this
// trace behave?" for all cache capacities simultaneously — the key that
// turns a per-config cache simulation sweep into histogram lookups.
//
// The classic Bennett–Kruskal algorithm: walk the trace keeping, for each
// line, the position of its most recent reference, and an order-statistic
// tree (implemented as a Fenwick tree, the implicit form) over positions
// with a 1 at every position that is currently some line's last touch. The
// distance of a reference is the number of set positions strictly between
// its line's previous touch and now. Each reference does O(log N) tree work.
//
// Histograms are kept per REGION (the region issuing each reference) over
// the GLOBAL interleaved stream — caches are shared across regions, so a
// reference's distance must see every region's intervening lines, while
// attribution of the resulting miss stays with the issuing region.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/cancel.h"
#include "trace/trace.h"

namespace skope::trace {

/// Stack-distance histogram of one region's references.
struct RegionHistogram {
  uint32_t region = 0;
  /// (distance, count) pairs, ascending by distance. Distances count
  /// distinct intervening lines, so 0 means an immediate same-line reuse.
  std::vector<std::pair<uint64_t, uint64_t>> dist;
  uint64_t coldRefs = 0;   ///< first touches (infinite distance)
  uint64_t totalRefs = 0;  ///< all references issued by this region
};

/// All regions' histograms at one line granularity.
struct ReuseHistograms {
  uint32_t lineBytes = 64;
  std::vector<RegionHistogram> regions;  ///< ascending by region id
  uint64_t totalRefs = 0;
  uint64_t totalCold = 0;                ///< distinct lines touched
};

/// Exact per-set LRU replay results for one small-set cache geometry (the
/// CacheModel's exact tier, see trace/cache_model.h). Machine independent
/// given (trace, geometry) — the replay is a pure function of the recorded
/// stream — so it is persistable under the front-end's content address just
/// like the histograms. refsByRegion / refsTotal ride along because the
/// replay pass is also where the model counts per-region references.
struct ExactReplayArtifact {
  uint64_t sizeBytes = 0;   ///< level capacity in bytes
  uint32_t lineBytes = 0;   ///< line size in bytes
  uint32_t assoc = 0;       ///< ways
  std::vector<double> regionMisses;    ///< exact misses, indexed by region id
  std::vector<uint64_t> refsByRegion;  ///< references issued, by region id
  uint64_t refsTotal = 0;              ///< sum of refsByRegion
};

/// Persistence hook for the trace layer's two expensive derived results:
/// reuse-distance histograms and exact-replay miss counts. Implemented by
/// the artifact cache (src/artifact/cache.h) and declared here so the trace
/// layer stays independent of the artifact layer. Implementations must be
/// internally thread-safe and must swallow their own I/O failures: loads
/// return nullptr on miss OR error, stores are best-effort.
class ReuseCacheHook {
 public:
  virtual ~ReuseCacheHook() = default;

  /// The persisted histograms for `lineBytes`, or nullptr on miss/error.
  [[nodiscard]] virtual std::unique_ptr<ReuseHistograms> load(uint32_t lineBytes) = 0;

  /// Persists freshly computed histograms (best-effort).
  virtual void store(const ReuseHistograms& h) = 0;

  /// The persisted exact-replay result for one geometry, or nullptr on
  /// miss/error. Default: always a miss (histogram-only implementations).
  [[nodiscard]] virtual std::unique_ptr<ExactReplayArtifact> loadExactReplay(
      uint64_t /*sizeBytes*/, uint32_t /*lineBytes*/, uint32_t /*assoc*/) {
    return nullptr;
  }

  /// Persists a freshly replayed geometry (best-effort). Default: drop.
  virtual void storeExactReplay(const ExactReplayArtifact& /*e*/) {}
};

/// Computes exact per-region stack-distance histograms from a recorded
/// trace. Histograms depend only on the line granularity, so they are
/// computed once per distinct line size and cached; the cache is guarded by
/// a mutex, making concurrent sweep workers safe.
class ReuseDistanceAnalyzer {
 public:
  /// `trace` must outlive the analyzer and be usable() — throws Error
  /// otherwise (a truncated trace would silently underestimate distances).
  /// `threads` > 1 shards the per-region histogram construction (the
  /// accumulate-and-sort phase) across a work-stealing pool; the
  /// order-statistic walk itself stays serial because every reference's
  /// distance depends on the globally interleaved stream. Output is
  /// identical for any thread count. `cancel` interrupts the Fenwick walk
  /// and the shard tasks with CancelledError at ~64K-ref granularity.
  /// A non-null `hook` (borrowed; must outlive the analyzer) is consulted
  /// before each Fenwick walk and fed afterwards, so persisted histograms
  /// skip the O(N log N) pass entirely. A loaded result is trusted only if
  /// its totalRefs matches the trace — a mismatched entry is recomputed.
  explicit ReuseDistanceAnalyzer(const MemoryTrace& trace, int threads = 1,
                                 CancelToken cancel = {},
                                 ReuseCacheHook* hook = nullptr);

  /// Histograms at `lineBytes` granularity (power of two, >= 8).
  const ReuseHistograms& histograms(uint32_t lineBytes) const;

  [[nodiscard]] const MemoryTrace& trace() const { return trace_; }

 private:
  const MemoryTrace& trace_;
  int threads_ = 1;
  CancelToken cancel_;
  ReuseCacheHook* hook_ = nullptr;
  mutable std::mutex mu_;
  mutable std::map<uint32_t, std::unique_ptr<ReuseHistograms>> cache_;
};

}  // namespace skope::trace
