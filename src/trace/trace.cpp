#include "trace/trace.h"

#include "support/faultinject.h"
#include "telemetry/telemetry.h"

namespace skope::trace {

namespace {

inline uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void putVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

inline uint64_t getVarint(const uint8_t*& p) {
  uint64_t v = 0;
  int shift = 0;
  while (*p & 0x80) {
    v |= static_cast<uint64_t>(*p++ & 0x7f) << shift;
    shift += 7;
  }
  v |= static_cast<uint64_t>(*p++) << shift;
  return v;
}

}  // namespace

void MemoryTrace::forEachRef(const std::function<void(uint32_t, uint64_t)>& fn) const {
  // Decoding mirrors the recorder: per-region previous word addresses seed
  // the deltas, regions start at "none" so the first record always carries
  // its region id explicitly.
  std::map<uint32_t, uint64_t> lastWordByRegion;
  uint32_t region = ~0u;
  const uint8_t* p = data();
  const uint8_t* end = p + sizeBytes();
  while (p < end) {
    uint64_t header = getVarint(p);
    if (header & 1) region = static_cast<uint32_t>(getVarint(p));
    int64_t delta = unzigzag(header >> 1);
    uint64_t& last = lastWordByRegion[region];
    uint64_t word = last + static_cast<uint64_t>(delta);
    last = word;
    fn(region, word);
  }
}

TraceRecorder::TraceRecorder(uint64_t maxRefs) : maxRefs_(maxRefs) {
  // Streaming sweeps encode to ~1 byte/ref; reserve modestly and grow.
  trace_.stream.reserve(1 << 16);
}

void TraceRecorder::record(uint32_t region, uint64_t addr) {
  ++trace_.numRefs;
  // Injection point: simulates the recorder hitting its cap early, which
  // marks the trace truncated and exercises the downstream degradation
  // ladder (reuse-dist -> layer-cond -> constant).
  SKOPE_FAULT_POINT("trace/record", trace_.truncated = true);
  if (trace_.truncated || trace_.recordedRefs >= maxRefs_) {
    trace_.truncated = true;
    return;
  }
  ++trace_.recordedRefs;
  uint64_t word = addr >> 3;
  uint64_t& last = lastWordByRegion_[region];
  int64_t delta = static_cast<int64_t>(word - last);
  last = word;
  uint64_t header = (zigzag(delta) << 1) | (region != lastRegion_ ? 1u : 0u);
  putVarint(trace_.stream, header);
  if (region != lastRegion_) {
    putVarint(trace_.stream, region);
    lastRegion_ = region;
  }
}

void TraceRecorder::onBranch(uint32_t region, uint32_t site, bool taken) {
  // Same 2-bit saturating counter the ground-truth simulator uses: states
  // 0,1 predict not-taken, 2,3 predict taken.
  uint8_t& state = predictorStates_[site];
  bool predictTaken = state >= 2;
  if (taken && state < 3) ++state;
  if (!taken && state > 0) --state;
  if (predictTaken != taken) ++trace_.mispredictsByRegion[region];
}

MemoryTrace TraceRecorder::finish(const vm::Vm& vm) {
  trace_.dynamicInstrs = vm.dynamicInstrs();
  trace_.stream.shrink_to_fit();
  if (telemetry::enabled()) {
    auto& reg = telemetry::Registry::current();
    reg.counter("trace/bytes").add(trace_.stream.size());
    reg.counter("trace/refs").add(trace_.recordedRefs);
    if (trace_.truncated) reg.counter("trace/truncated").add(1);
  }
  return std::move(trace_);
}

}  // namespace skope::trace
