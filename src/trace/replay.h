// Trace replay: reconstructs a ground-truth-equivalent sim::SimResult for any
// machine WITHOUT re-running the VM (the sweep fast path).
//
// Everything the simulator derives from program execution is machine
// independent and captured once by the profiling run:
//   * per-region op counts            (vm::ProfileData::opCounters)
//   * per-builtin library call counts (vm::ProfileData::libCalls)
//   * branch mispredictions           (MemoryTrace::mispredictsByRegion —
//                                      the 2-bit predictor sees only the
//                                      branch stream)
//   * the memory-reference stream     (MemoryTrace — distilled to reuse
//                                      histograms by CacheModel)
// Per machine, replay combines those with the machine's CostModel,
// vectorization decisions and the analytic cache prediction. Compute and
// branch cycles match the simulator exactly (same helper, same penalties);
// memory cycles use the CacheModel's expected miss counts, which track the
// simulated hierarchy within the accuracy envelope documented in
// docs/TRACE.md.
#pragma once

#include "sim/simulator.h"
#include "trace/cache_model.h"
#include "vm/profile.h"

namespace skope::trace {

/// Machine-independent inputs shared by every replay of one workload. All
/// referenced objects must outlive the calls.
struct ReplayInputs {
  const MemoryTrace& trace;
  const CacheModel& cacheModel;
  const vm::ProfileData& profile;
  const sim::LibMixMap* libMixes = nullptr;
};

/// Predicts the simulator's result for `machine` from the recorded run.
/// Pure and thread-safe once `cacheModel` has been prepare()d for the
/// machine's line sizes.
sim::SimResult replaySimulate(const minic::Program& prog, const MachineModel& machine,
                              const ReplayInputs& in);

}  // namespace skope::trace
