#!/usr/bin/env python3
"""Perf-regression gate over the benches' BENCH_*.json metric dumps.

Reads bench/baselines.json (conservative floors seeded from local runs) and
the skope-metrics-v1 JSON files the bench binaries write, and fails when any
gated gauge regresses more than the allowed tolerance past its baseline:

  * direction "higher" (speedups): fail when value < baseline * (1 - tol)
  * direction "lower"  (coverage fractions, quality gaps):
    fail when value > baseline * (1 + tol)

A missing metrics file or gauge is a FAILURE, not a skip — a gate that
silently passes when the bench stopped emitting its headline number is no
gate at all.

The inverse is checked too: a gauge that appears in a dump but is neither
gated nor matched by a pattern in the spec's "ungated" allowlist is flagged
(WARNING by default, a failure under --fail-on-ungated) — a bench that grew
a new headline number should either gate it or declare it informational.

Usage:
  python3 tools/check_perf.py [--baselines bench/baselines.json] [--dir .]
      [--fail-on-ungated]
"""

import argparse
import fnmatch
import json
import os
import sys


def load_gauges(path):
    with open(path) as f:
        m = json.load(f)
    return m.get("gauges", {})


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="bench/baselines.json",
                    help="baseline spec (default: bench/baselines.json)")
    ap.add_argument("--dir", default=".",
                    help="directory holding the BENCH_*.json dumps (default: .)")
    ap.add_argument("--fail-on-ungated", action="store_true",
                    help="treat gauges missing from both the gate list and the "
                         "'ungated' allowlist as failures instead of warnings")
    args = ap.parse_args()

    with open(args.baselines) as f:
        spec = json.load(f)
    tol = spec.get("tolerance_pct", 20) / 100.0

    gauges_by_file = {}
    failures = 0
    rows = []
    for m in spec["metrics"]:
        fname, gauge = m["file"], m["gauge"]
        baseline, direction = m["baseline"], m["direction"]
        path = os.path.join(args.dir, fname)
        if fname not in gauges_by_file:
            try:
                gauges_by_file[fname] = load_gauges(path)
            except (OSError, json.JSONDecodeError) as e:
                gauges_by_file[fname] = None
                print(f"ERROR: cannot read {path}: {e}", file=sys.stderr)
        gauges = gauges_by_file[fname]
        value = gauges.get(gauge) if gauges is not None else None
        if value is None:
            rows.append((gauge, "MISSING", f"{baseline:g}", "-", "FAIL"))
            failures += 1
            continue
        if direction == "higher":
            limit = baseline * (1 - tol)
            ok = value >= limit
            bound = f">= {limit:g}"
        else:
            limit = baseline * (1 + tol)
            ok = value <= limit
            bound = f"<= {limit:g}"
        rows.append((gauge, f"{value:g}", f"{baseline:g}", bound, "ok" if ok else "FAIL"))
        if not ok:
            failures += 1

    widths = [max(len(str(r[i])) for r in rows + [("gauge", "value", "baseline", "gate", "")])
              for i in range(5)]
    header = ("gauge", "value", "baseline", "gate", "")
    for r in [header] + rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)).rstrip())

    # Coverage check: every gauge a bench emitted must be gated above or
    # matched by an "ungated" pattern (informational numbers like
    # bench/peak_rss_kb). Anything else is a new headline figure nobody
    # decided a policy for. Scans every BENCH_*.json in --dir, including
    # dumps no gate references.
    for fname in sorted(os.listdir(args.dir)):
        if fname.startswith("BENCH_") and fname.endswith(".json") \
                and fname not in gauges_by_file:
            try:
                gauges_by_file[fname] = load_gauges(os.path.join(args.dir, fname))
            except (OSError, json.JSONDecodeError):
                gauges_by_file[fname] = None
    gated = {(m["file"], m["gauge"]) for m in spec["metrics"]}
    ungated_patterns = spec.get("ungated", [])
    ungated = 0
    for fname in sorted(gauges_by_file):
        gauges = gauges_by_file[fname]
        if gauges is None:
            continue
        for gauge in sorted(gauges):
            if (fname, gauge) in gated:
                continue
            if any(fnmatch.fnmatch(gauge, pat) for pat in ungated_patterns):
                continue
            ungated += 1
            label = "ERROR" if args.fail_on_ungated else "WARNING"
            print(f"{label}: {fname} gauge '{gauge}' is neither gated nor in "
                  f"the 'ungated' allowlist", file=sys.stderr)
    if ungated and args.fail_on_ungated:
        failures += ungated

    if failures:
        print(f"\nperf gate: {failures} regression(s) past the "
              f"{spec.get('tolerance_pct', 20)}% tolerance", file=sys.stderr)
        return 1
    print(f"\nperf gate: all {len(rows)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
