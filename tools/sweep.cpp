// sweep — batch co-design: one workload, a whole grid of candidate machines.
//
// The front-end (parse, compile, one profiling run, BET build) runs once;
// every machine config in the grid is then projected concurrently against the
// shared model and the results come back as a ranked report. Examples:
//
//   sweep sord --grid "membw=15:60:15; peakflops=2,4,8,16"
//   sweep sord --grid grid.spec --threads 8 --format csv --out sord.csv
//   sweep srad --grid "base=xeon; llcmb=5,15,30" --quality
//   sweep --list-fields                          # sweepable hardware knobs
//
// With --search the grid spec is read as a design space (log-stepped axes,
// derives, constraints, a cost model) and a guided search answers the
// Pareto question instead of exhaustively ranking the grid:
//
//   sweep cfd --search shalving --seed 7 --eval-budget 200
//       --grid "membw=15:240:*2; cores=4:64:*2; cost = cores/2 + membw/8"
//
// See docs/SWEEP.md for the grid-spec format and the output schema, and
// docs/SEARCH.md for design spaces and the search drivers.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>

#include "artifact/cache.h"
#include "core/backend.h"
#include "core/framework.h"
#include "machine/grid.h"
#include "search/report.h"
#include "search/search.h"
#include "search/space.h"
#include "support/argparse.h"
#include "support/cancel.h"
#include "support/faultinject.h"
#include "support/log.h"
#include "support/text.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

using namespace skope;

namespace {

MachineGrid loadGrid(const std::string& spec, const std::string& baseFlag) {
  MachineGrid grid;
  // A spec containing '=' is inline; anything else is a file path.
  if (spec.find('=') != std::string::npos) {
    grid = parseGridSpec(spec);
  } else {
    grid = loadGridFile(spec);
  }
  // --base applies only when the spec itself didn't pick one.
  if (spec.find("base") == std::string::npos && !baseFlag.empty()) {
    grid.base = machineByName(baseFlag);
  }
  return grid;
}

search::DesignSpace loadSpace(const std::string& spec, const std::string& baseFlag) {
  search::DesignSpace space;
  if (spec.find('=') != std::string::npos) {
    space = search::parseDesignSpace(spec);
  } else {
    space = search::loadDesignSpaceFile(spec);
  }
  if (spec.find("base") == std::string::npos && !baseFlag.empty()) {
    space.base = machineByName(baseFlag);
  }
  return space;
}

/// Live "done/total, rate, ETA" line on stderr, fed by the pool's completion
/// callback from multiple worker threads. Repaints in place (\r) at most
/// ~10x/s; always paints the final count, then finish() ends the line.
class ProgressLine {
 public:
  void update(size_t done, size_t total) {
    using namespace std::chrono;
    std::lock_guard<std::mutex> lock(mu_);
    auto now = steady_clock::now();
    if (!started_) {
      started_ = true;
      start_ = now;
      last_ = now - milliseconds(1000);  // paint the first update immediately
    }
    if (done < total && now - last_ < milliseconds(100)) return;
    last_ = now;
    double secs = duration_cast<duration<double>>(now - start_).count();
    double rate = secs > 0 ? static_cast<double>(done) / secs : 0;
    double eta = rate > 0 ? static_cast<double>(total - done) / rate : 0;
    std::fprintf(stderr, "\rsweep: %zu/%zu configs, %.1f cfg/s, ETA %.1fs   ",
                 done, total, rate, eta);
    std::fflush(stderr);
    painted_ = true;
  }

  void finish() {
    std::lock_guard<std::mutex> lock(mu_);
    if (painted_) std::fputc('\n', stderr);
    painted_ = false;
  }

 private:
  std::mutex mu_;
  bool started_ = false;
  bool painted_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_;
};

int run(int argc, char** argv) {
  ArgParser args("sweep", "evaluate a workload across a grid of machine configs "
                          "(shared front-end, parallel back-end)");
  args.addPositional("workload", "bundled workload name (sord, chargei, srad, cfd, "
                                 "stassuij) or a MiniC file path", /*required=*/false);
  args.addFlag("grid", "grid spec: a file path, or inline directives like "
                       "\"membw=15:60:15; peakflops=2,4,8\"");
  args.addFlag("base", "base machine when the spec has no 'base =' line: "
                       "bgq, xeon, knl, arm", "bgq");
  args.addFlag("threads", "worker threads; 0 auto-detects all hardware threads "
                          "(std::thread::hardware_concurrency)", "0");
  args.addChoice("search", "evaluation driver: 'none' sweeps the grid "
                           "exhaustively (classic ranked report); 'exhaustive' "
                           "and 'shalving' read the spec as a design space "
                           "(constraints, derives, cost model — see "
                           "docs/SEARCH.md) and report the time/cost Pareto "
                           "front, either over every point or via guided "
                           "successive-halving search",
                 {"none", "exhaustive", "shalving"}, "none");
  args.addChoice("pareto", "search objectives: projected time alone, or "
                           "time plus the spec's 'cost =' model",
                 {"time", "time,cost"}, "time,cost");
  args.addFlag("eval-budget", "max candidate evaluations for --search "
                              "(0 = uncapped); exhausting it truncates "
                              "deterministically and is recorded in the "
                              "report's provenance line", "0");
  args.addFlag("seed", "deterministic seed for --search=shalving sampling "
                       "and mutation", "1");
  args.addFlag("within-pct", "report the cheapest config within this % of "
                             "the fastest (needs a cost model)", "5");
  args.addChoice("backend", "roofline back-end: 'batched' walks the BET once and "
                            "combines per config (node-major), 'scalar' re-walks "
                            "it per config; both produce identical reports",
                 {"batched", "scalar"}, "batched");
  args.addFlag("coverage", "hot-spot time-coverage criterion", "0.90");
  args.addFlag("leanness", "hot-spot code-leanness criterion", "0.45");
  args.addChoice("format", "report format", {"md", "csv", "both"}, "md");
  args.addFlag("out", "write the report here instead of stdout");
  args.addFlag("top", "rows in the markdown table (0 = all)", "0");
  args.addFlag("params", "override workload params, e.g. N=128,STEPS=10");
  args.addFlag("hints", "hint file with one 'name = value' binding per line");
  args.addBool("quality", "also run the ground-truth simulator per config "
                          "(measured time + selection quality; much slower)");
  args.addChoice("cache-model",
                 "cache model: 'simulate' re-runs the simulator per config, "
                 "'reuse-dist' replays the recorded trace through the analytic "
                 "reuse-distance model (orders of magnitude faster; see "
                 "docs/TRACE.md), 'layer-cond' predicts hit ratios symbolically "
                 "from loop bounds and strides — no trace, O(1)/config, and "
                 "feeds the roofline's miss ratios (see docs/CACHE_MODELS.md)",
                 {"simulate", "reuse-dist", "layer-cond"}, "simulate");
  args.addBool("trace-roofline", "feed trace-predicted miss ratios into the "
                                 "roofline instead of the constant 0.85 hit rate "
                                 "(implies building the reuse-distance model)");
  args.addFlag("max-ops", "dynamic instruction budget per VM run "
                          "(0 = default 4e9)", "0");
  args.addFlag("deadline-ms", "wall-clock budget for the whole run in ms "
                              "(0 = unlimited); configs the deadline cuts off "
                              "report status=timeout", "0");
  args.addFlag("config-timeout-ms", "per-config wall-clock budget in ms "
                                    "(0 = unlimited); over-budget configs "
                                    "report status=timeout", "0");
  args.addFlag("trace-budget-bytes", "largest memory trace reuse-dist will "
                                     "replay, in bytes (0 = no budget); over "
                                     "budget degrades to layer-cond, see "
                                     "docs/ROBUSTNESS.md", "0");
  args.addFlag("replay-budget-ops", "largest reference count reuse-dist will "
                                    "replay (0 = no budget); over budget "
                                    "degrades to layer-cond", "0");
  args.addFlag("fault-spec", "arm deterministic fault injection: "
                             "point:rate:seed[,point:rate:seed...], e.g. "
                             "pool/task:0.05:7 (see docs/ROBUSTNESS.md)");
  args.addFlag("artifact-cache", "persistent artifact cache directory: the "
                                 "profiling run, recorded trace and "
                                 "reuse-distance histograms are stored "
                                 "content-addressed and reused across runs "
                                 "(default $SKOPE_ARTIFACT_CACHE; see "
                                 "docs/ARTIFACTS.md)");
  args.addFlag("artifact-cache-max-mb", "size cap for --artifact-cache in MiB "
                                        "(0 = uncapped); writes evict "
                                        "least-recently-written entries to fit",
               "0");
  args.addBool("hotpath", "extract each config's hot path (adds size columns)");
  args.addBool("list-fields", "print the sweepable machine fields and exit");
  args.addFlag("log-level", "stderr verbosity: quiet, info, debug", "info");
  args.addFlag("trace-json", "write a Chrome trace-event JSON of the sweep "
                             "(one track per worker; open in Perfetto)");
  args.addFlag("metrics-json", "write the telemetry metrics export here");
  args.addChoice("metrics-format", "metrics export format for --metrics-json: "
                                   "structured JSON or Prometheus text "
                                   "exposition (see docs/OBSERVABILITY.md)",
                 {"json", "prom"}, "json");
  args.addFlag("request-id", "correlation id: run under a request-scoped "
                             "telemetry context so every exported metric, "
                             "span and flight-recorder event carries this id "
                             "(implies telemetry on)");
  args.addBool("report-eval-ms", "append a per-config eval_ms wall-clock "
                                 "column to the reports (not byte-deterministic "
                                 "across runs)");
  args.addFlag("self-report", "write the framework's own hot-spot ranking as a "
                              "markdown table here (CI job summaries)");
  if (!args.parse(argc, argv)) return 0;

  logging::setLevel(logging::parseLevel(args.get("log-level")));
  const std::string tracePath = args.get("trace-json");
  const std::string metricsPath = args.get("metrics-json");
  const std::string selfReportPath = args.get("self-report");
  const std::string requestId = args.get("request-id");
  // With --request-id the whole run executes under a request-scoped Context
  // (its registry thread-locally shadows the global one and tags every
  // export with the id); otherwise instrumentation lands in the global
  // registry as before.
  std::optional<telemetry::Context> teleCtx;
  if (!tracePath.empty() || !metricsPath.empty() || !selfReportPath.empty() ||
      !requestId.empty() || logging::debugEnabled()) {
    if (!requestId.empty()) {
      teleCtx.emplace(requestId);
    } else {
      telemetry::Registry::global().setEnabled(true);
    }
    telemetry::setThreadName("main");
  }
  auto& telem = teleCtx ? teleCtx->registry() : telemetry::Registry::global();

  if (args.getBool("list-fields")) {
    std::fputs(gridFieldHelp().c_str(), stdout);
    return 0;
  }
  if (args.get("workload").empty()) {
    throw Error("missing workload (or use --list-fields)");
  }
  if (args.get("grid").empty()) {
    throw Error("missing --grid (a spec file or inline directives; "
                "see --list-fields for the axes)");
  }

  // --search=none keeps the classic exhaustive ranked sweep; the search
  // modes read the same spec as a design space (a strict superset).
  const std::string searchMode = args.get("search");
  MachineGrid grid;
  search::DesignSpace space;
  if (searchMode == "none") {
    grid = loadGrid(args.get("grid"), args.get("base"));
    if (grid.axes.empty()) {
      throw Error("grid has no axes — nothing to sweep (see --list-fields)");
    }
  } else {
    space = loadSpace(args.get("grid"), args.get("base"));
    if (space.axes.empty()) {
      throw Error("design space has no axes — nothing to search "
                  "(see --list-fields and docs/SEARCH.md)");
    }
    if (args.get("pareto") == "time") {
      // Time-only front: drop the cost model so the Pareto filter and the
      // cheapest-within answer don't engage.
      space.cost = nullptr;
      space.costText.clear();
    }
  }

  // Arm fault injection before any pipeline stage runs, so front-end points
  // (trace/record) are live too.
  faultinject::configure(args.get("fault-spec"));

  // The root token covers the whole run (front-end included); a null token
  // when no deadline is set keeps the clean-run polls at one pointer test.
  CancelToken cancel;
  if (int64_t deadlineMs = args.getInt("deadline-ms", 0); deadlineMs > 0) {
    cancel = CancelToken::withTimeoutMs(deadlineMs);
  }

  sweep::SweepOptions opts;
  opts.threads = static_cast<int>(args.getInt("threads", 0, 4096));
  opts.criteria = {args.getDouble("coverage"), args.getDouble("leanness")};
  opts.groundTruth = args.getBool("quality");
  opts.hotPaths = args.getBool("hotpath");
  opts.traceInformedRoofline = args.getBool("trace-roofline");
  opts.maxOps = args.getUint64("max-ops");
  opts.cancel = cancel;
  opts.configTimeoutMs = args.getInt("config-timeout-ms", 0);
  opts.traceBudgetBytes = args.getUint64("trace-budget-bytes");
  opts.replayBudgetOps = args.getUint64("replay-budget-ops");

  // Choice validation happens in parse(); here we only map strings to enums.
  if (args.get("backend") == "scalar") opts.backend = sweep::SweepBackend::Scalar;

  std::string cacheModel = args.get("cache-model");
  if (cacheModel == "layer-cond") {
    opts.cacheModel = sweep::CacheModelMode::LayerCond;
  } else if (cacheModel == "reuse-dist" || opts.traceInformedRoofline) {
    opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  }

  // Persistent artifact cache: --artifact-cache wins, then the
  // SKOPE_ARTIFACT_CACHE environment. The MiB cap parses strictly (ranged;
  // capped so the byte conversion cannot overflow) even when no cache
  // directory is configured, so a bad value never passes silently.
  std::optional<artifact::ArtifactCache> artifacts;
  uint64_t maxMb = args.getUint64("artifact-cache-max-mb", 0, UINT64_MAX >> 20);
  std::string artifactDir = args.get("artifact-cache");
  if (artifactDir.empty()) artifactDir = artifact::ArtifactCache::envDir();
  if (!artifactDir.empty()) {
    artifacts.emplace(artifactDir, maxMb << 20);
    opts.artifacts = &*artifacts;
  }

  core::FrontendOptions fopts;
  fopts.maxOps = opts.maxOps;
  fopts.cancel = cancel;
  fopts.artifacts = opts.artifacts;
  // The trace rides along on the profiling run either way; it is only
  // *required* in reuse-dist mode.
  auto frontend = core::loadFrontend(args.get("workload"), args.get("params"),
                                     args.get("hints"), fopts);
  if (artifacts && logging::infoEnabled()) {
    logging::info("sweep: artifact cache at %s: front-end %s",
                  artifacts->store().root().c_str(),
                  frontend->artifactProvenance().c_str());
  }

  ProgressLine progress;
  if (logging::infoEnabled()) {
    opts.progress = [&progress](size_t done, size_t total) {
      progress.update(done, total);
    };
  }
  std::string format = args.get("format");
  std::string report;
  size_t configCount = 0;
  int threadsUsed = 1;
  double runSeconds = 0;
  const size_t topN = static_cast<size_t>(args.getUint64("top"));
  sweep::ReportOptions ropts;
  ropts.evalMs = args.getBool("report-eval-ms");
  // When telemetry is on, failed/timed-out rows carry their flight-recorder
  // tail in the markdown report — an instrumented run already gave up byte
  // determinism, so the extra context is free.
  ropts.flightTrace = telem.enabled();
  if (searchMode == "none") {
    auto result = sweep::runSweep(*frontend, grid, opts);
    progress.finish();
    if (format == "md" || format == "both") {
      report += sweep::toMarkdown(result, topN, ropts);
    }
    if (format == "csv" || format == "both") {
      if (!report.empty()) report += "\n";
      report += sweep::toCsv(result, ropts);
    }
    configCount = result.outcomes.size();
    threadsUsed = result.threadsUsed;
    runSeconds = result.sweepSeconds;
  } else {
    search::SearchOptions sopts;
    sopts.algorithm = searchMode == "exhaustive"
                          ? search::SearchAlgorithm::Exhaustive
                          : search::SearchAlgorithm::SuccessiveHalving;
    sopts.seed = args.getUint64("seed");
    sopts.evalBudget = static_cast<size_t>(args.getUint64("eval-budget"));
    sopts.withinPct = args.getDouble("within-pct");
    sopts.sweep = opts;
    auto result = search::runSearch(*frontend, space, sopts);
    progress.finish();
    if (format == "md" || format == "both") {
      report += search::searchToMarkdown(result, topN, ropts);
    }
    if (format == "csv" || format == "both") {
      if (!report.empty()) report += "\n";
      report += search::searchToCsv(result, ropts);
    }
    configCount = result.evals();
    threadsUsed = result.threadsUsed;
    runSeconds = result.searchSeconds;
  }
  if (report.empty()) {
    throw Error("unknown --format '" + format + "' (md, csv, both)");
  }

  if (!args.get("out").empty()) {
    std::ofstream out(args.get("out"));
    if (!out) throw Error("cannot write '" + args.get("out") + "'");
    out << report;
    logging::info("sweep: %zu configs -> %s (%d threads, %.3f s)",
                  configCount, args.get("out").c_str(), threadsUsed, runSeconds);
  } else {
    std::fputs(report.c_str(), stdout);
    logging::info("sweep: %zu configs, %d threads, %.3f s back-end",
                  configCount, threadsUsed, runSeconds);
  }

  if (telem.enabled()) {
    // Publish the cache's on-disk footprint even on pure-hit runs (writes
    // refresh it themselves); it lands in the self-report gauges table and
    // the Prometheus export next to the hit/miss counters.
    if (artifacts) {
      telem.gauge("artifact/store_bytes")
          .set(static_cast<double>(artifacts->store().storeBytes()));
    }
    auto mfmt = args.get("metrics-format") == "prom" ? telemetry::MetricsFormat::Prom
                                                     : telemetry::MetricsFormat::Json;
    telemetry::writeExports(telem, tracePath, metricsPath, selfReportPath, mfmt);
    for (const std::string& p : {tracePath, metricsPath, selfReportPath}) {
      if (!p.empty()) logging::info("sweep: wrote %s", p.c_str());
    }
    if (logging::debugEnabled()) {
      std::fputs(telemetry::selfHotSpotTable(telem).c_str(), stderr);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 1;
  }
}
