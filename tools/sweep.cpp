// sweep — batch co-design: one workload, a whole grid of candidate machines.
//
// The front-end (parse, compile, one profiling run, BET build) runs once;
// every machine config in the grid is then projected concurrently against the
// shared model and the results come back as a ranked report. Examples:
//
//   sweep sord --grid "membw=15:60:15; peakflops=2,4,8,16"
//   sweep sord --grid grid.spec --threads 8 --format csv --out sord.csv
//   sweep srad --grid "base=xeon; llcmb=5,15,30" --quality
//   sweep --list-fields                          # sweepable hardware knobs
//
// See docs/SWEEP.md for the grid-spec format and the output schema.
#include <cstdio>
#include <fstream>

#include "core/backend.h"
#include "core/framework.h"
#include "machine/grid.h"
#include "support/argparse.h"
#include "support/text.h"
#include "sweep/report.h"
#include "sweep/sweep.h"

using namespace skope;

namespace {

MachineGrid loadGrid(const std::string& spec, const std::string& baseFlag) {
  MachineGrid grid;
  // A spec containing '=' is inline; anything else is a file path.
  if (spec.find('=') != std::string::npos) {
    grid = parseGridSpec(spec);
  } else {
    grid = loadGridFile(spec);
  }
  // --base applies only when the spec itself didn't pick one.
  if (spec.find("base") == std::string::npos && !baseFlag.empty()) {
    grid.base = machineByName(baseFlag);
  }
  return grid;
}

int run(int argc, char** argv) {
  ArgParser args("sweep", "evaluate a workload across a grid of machine configs "
                          "(shared front-end, parallel back-end)");
  args.addPositional("workload", "bundled workload name (sord, chargei, srad, cfd, "
                                 "stassuij) or a MiniC file path", /*required=*/false);
  args.addFlag("grid", "grid spec: a file path, or inline directives like "
                       "\"membw=15:60:15; peakflops=2,4,8\"");
  args.addFlag("base", "base machine when the spec has no 'base =' line: "
                       "bgq, xeon, knl, arm", "bgq");
  args.addFlag("threads", "worker threads (0 = all hardware threads)", "0");
  args.addFlag("coverage", "hot-spot time-coverage criterion", "0.90");
  args.addFlag("leanness", "hot-spot code-leanness criterion", "0.45");
  args.addFlag("format", "report format: md, csv, or both", "md");
  args.addFlag("out", "write the report here instead of stdout");
  args.addFlag("top", "rows in the markdown table (0 = all)", "0");
  args.addFlag("params", "override workload params, e.g. N=128,STEPS=10");
  args.addFlag("hints", "hint file with one 'name = value' binding per line");
  args.addBool("quality", "also run the ground-truth simulator per config "
                          "(measured time + selection quality; much slower)");
  args.addFlag("cache-model", "ground-truth engine for --quality: 'simulate' "
                              "re-runs the simulator per config, 'reuse-dist' "
                              "replays the recorded trace through the analytic "
                              "reuse-distance cache model (orders of magnitude "
                              "faster; see docs/TRACE.md)", "simulate");
  args.addBool("trace-roofline", "feed trace-predicted miss ratios into the "
                                 "roofline instead of the constant 0.85 hit rate "
                                 "(implies building the reuse-distance model)");
  args.addFlag("max-ops", "dynamic instruction budget per VM run "
                          "(0 = default 4e9)", "0");
  args.addBool("hotpath", "extract each config's hot path (adds size columns)");
  args.addBool("list-fields", "print the sweepable machine fields and exit");
  if (!args.parse(argc, argv)) return 0;

  if (args.getBool("list-fields")) {
    std::fputs(gridFieldHelp().c_str(), stdout);
    return 0;
  }
  if (args.get("workload").empty()) {
    throw Error("missing workload (or use --list-fields)");
  }
  if (args.get("grid").empty()) {
    throw Error("missing --grid (a spec file or inline directives; "
                "see --list-fields for the axes)");
  }

  MachineGrid grid = loadGrid(args.get("grid"), args.get("base"));
  if (grid.axes.empty()) {
    throw Error("grid has no axes — nothing to sweep (see --list-fields)");
  }

  sweep::SweepOptions opts;
  opts.threads = static_cast<int>(args.getDouble("threads"));
  opts.criteria = {args.getDouble("coverage"), args.getDouble("leanness")};
  opts.groundTruth = args.getBool("quality");
  opts.hotPaths = args.getBool("hotpath");
  opts.traceInformedRoofline = args.getBool("trace-roofline");
  opts.maxOps = static_cast<uint64_t>(args.getDouble("max-ops"));

  std::string cacheModel = args.get("cache-model");
  if (cacheModel == "reuse-dist" || opts.traceInformedRoofline) {
    opts.cacheModel = sweep::CacheModelMode::ReuseDist;
  } else if (cacheModel != "simulate") {
    throw Error("unknown --cache-model '" + cacheModel + "' (simulate, reuse-dist)");
  }

  core::FrontendOptions fopts;
  fopts.maxOps = opts.maxOps;
  // The trace rides along on the profiling run either way; it is only
  // *required* in reuse-dist mode.
  auto frontend = core::loadFrontend(args.get("workload"), args.get("params"),
                                     args.get("hints"), fopts);

  auto result = sweep::runSweep(*frontend, grid, opts);

  std::string format = args.get("format");
  std::string report;
  if (format == "md" || format == "both") {
    report += sweep::toMarkdown(result, static_cast<size_t>(args.getDouble("top")));
  }
  if (format == "csv" || format == "both") {
    if (!report.empty()) report += "\n";
    report += sweep::toCsv(result);
  }
  if (report.empty()) {
    throw Error("unknown --format '" + format + "' (md, csv, both)");
  }

  if (!args.get("out").empty()) {
    std::ofstream out(args.get("out"));
    if (!out) throw Error("cannot write '" + args.get("out") + "'");
    out << report;
    std::fprintf(stderr, "sweep: %zu configs -> %s (%d threads, %.3f s)\n",
                 result.outcomes.size(), args.get("out").c_str(), result.threadsUsed,
                 result.sweepSeconds);
  } else {
    std::fputs(report.c_str(), stdout);
    std::fprintf(stderr, "sweep: %zu configs, %d threads, %.3f s back-end\n",
                 result.outcomes.size(), result.threadsUsed, result.sweepSeconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 1;
  }
}
