// skopec — command-line driver for the co-design framework.
//
// Analyze one of the bundled benchmark workloads, or any MiniC file, on a
// chosen machine model:
//
//   skopec sord --machine=bgq                    # bundled workload
//   skopec app.mc --params N=128,STEPS=10        # your own program
//   skopec srad --machine=xeon --hotpath         # print the hot path
//   skopec cfd --skeleton                        # dump the annotated skeleton
//   skopec sord --compare                        # model vs ground truth
//   skopec sord --scaling --cells 64000 --steps 4  # multi-node projection
#include <algorithm>
#include <cstdio>
#include <optional>
#include <thread>

#include "artifact/cache.h"
#include "cachemodel/layercond.h"
#include "core/framework.h"
#include "report/table.h"
#include "roofline/multinode.h"
#include "skeleton/printer.h"
#include "support/argparse.h"
#include "support/cancel.h"
#include "support/faultinject.h"
#include "support/log.h"
#include "support/text.h"
#include "trace/cache_model.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

using namespace skope;

namespace {

std::unique_ptr<core::CodesignFramework> load(const std::string& target,
                                              const std::string& paramSpec,
                                              const std::string& hintPath,
                                              uint64_t maxOps,
                                              const CancelToken& cancel,
                                              const artifact::ArtifactCache* artifacts) {
  core::FrontendOptions fopts;
  fopts.maxOps = maxOps;
  fopts.cancel = cancel;
  fopts.artifacts = artifacts;
  return std::make_unique<core::CodesignFramework>(
      core::loadFrontend(target, paramSpec, hintPath, fopts));
}

int run(int argc, char** argv) {
  ArgParser args("skopec",
                 "analytic hot-region analysis for software-hardware co-design");
  args.addPositional("workload", "bundled workload name (sord, chargei, srad, cfd, "
                                 "stassuij) or a MiniC file path");
  args.addFlag("machine", "target machine: bgq, xeon, knl, arm", "bgq");
  args.addChoice("cache-model",
                 "miss-ratio source for the roofline projection: 'constant' "
                 "keeps the configured roofline parameters, 'reuse-dist' "
                 "predicts them from the profiling run's memory trace, "
                 "'layer-cond' predicts them symbolically from loop bounds and "
                 "strides — no trace needed (see docs/CACHE_MODELS.md)",
                 {"constant", "reuse-dist", "layer-cond"}, "constant");
  args.addFlag("params", "override workload params, e.g. N=128,STEPS=10");
  args.addFlag("hints", "hint file with one 'name = value' binding per line");
  args.addFlag("threads", "worker threads for the reuse-distance histogram "
                          "shards (--cache-model=reuse-dist); 0 auto-detects "
                          "all hardware threads "
                          "(std::thread::hardware_concurrency)", "1");
  args.addFlag("coverage", "hot-spot time-coverage criterion", "0.90");
  args.addFlag("leanness", "hot-spot code-leanness criterion", "0.45");
  args.addFlag("top", "rows to print in rankings", "10");
  args.addBool("compare", "also run the ground-truth simulator (Prof vs Modl)");
  args.addBool("hotpath", "print the hot path for the selection");
  args.addBool("skeleton", "dump the annotated code skeleton and exit");
  args.addBool("bet", "dump the Bayesian Execution Tree and exit");
  args.addFlag("scaling", "multi-node strong-scaling projection up to this node count");
  args.addFlag("cells", "total grid cells for the halo model (with --scaling)", "64000");
  args.addFlag("steps", "halo exchanges per run (with --scaling)", "4");
  args.addFlag("max-ops", "dynamic instruction budget per VM run "
                          "(0 = default 4e9)", "0");
  args.addFlag("deadline-ms", "wall-clock budget for the whole run in ms "
                              "(0 = unlimited); on expiry skopec exits with "
                              "a 'deadline exceeded' diagnostic", "0");
  args.addFlag("fault-spec", "arm deterministic fault injection: "
                             "point:rate:seed[,point:rate:seed...] "
                             "(see docs/ROBUSTNESS.md)");
  args.addFlag("artifact-cache", "persistent artifact cache directory: the "
                                 "profiling run, recorded trace and "
                                 "reuse-distance histograms are stored "
                                 "content-addressed and reused across runs "
                                 "(default $SKOPE_ARTIFACT_CACHE; see "
                                 "docs/ARTIFACTS.md)");
  args.addFlag("artifact-cache-max-mb", "size cap for --artifact-cache in MiB "
                                        "(0 = uncapped); writes evict "
                                        "least-recently-written entries to fit",
               "0");
  args.addFlag("log-level", "stderr verbosity: quiet, info, debug", "info");
  args.addFlag("trace-json", "write a Chrome trace-event JSON of the pipeline "
                             "stages here (open in Perfetto)");
  args.addFlag("metrics-json", "write the telemetry metrics export here");
  args.addChoice("metrics-format", "metrics export format for --metrics-json: "
                                   "structured JSON or Prometheus text "
                                   "exposition (see docs/OBSERVABILITY.md)",
                 {"json", "prom"}, "json");
  args.addFlag("request-id", "correlation id: run under a request-scoped "
                             "telemetry context so every exported metric and "
                             "span carries this id (implies telemetry on)");
  if (!args.parse(argc, argv)) return 0;

  logging::setLevel(logging::parseLevel(args.get("log-level")));
  const std::string tracePath = args.get("trace-json");
  const std::string metricsPath = args.get("metrics-json");
  const std::string requestId = args.get("request-id");
  std::optional<telemetry::Context> teleCtx;
  if (!tracePath.empty() || !metricsPath.empty() || !requestId.empty() ||
      logging::debugEnabled()) {
    if (!requestId.empty()) {
      teleCtx.emplace(requestId);
    } else {
      telemetry::Registry::global().setEnabled(true);
    }
    telemetry::setThreadName("main");
  }
  auto& telem = teleCtx ? teleCtx->registry() : telemetry::Registry::global();

  faultinject::configure(args.get("fault-spec"));
  CancelToken cancel;
  if (int64_t deadlineMs = args.getInt("deadline-ms", 0); deadlineMs > 0) {
    cancel = CancelToken::withTimeoutMs(deadlineMs);
  }

  // Persistent artifact cache: --artifact-cache wins, then the
  // SKOPE_ARTIFACT_CACHE environment. Strict ranged MiB parse (capped so the
  // byte conversion cannot overflow), applied even when no cache directory is
  // configured so a bad value never passes silently.
  std::optional<artifact::ArtifactCache> artifacts;
  uint64_t maxMb = args.getUint64("artifact-cache-max-mb", 0, UINT64_MAX >> 20);
  std::string artifactDir = args.get("artifact-cache");
  if (artifactDir.empty()) artifactDir = artifact::ArtifactCache::envDir();
  if (!artifactDir.empty()) {
    artifacts.emplace(artifactDir, maxMb << 20);
  }

  auto fw = load(args.get("workload"), args.get("params"), args.get("hints"),
                 args.getUint64("max-ops"), cancel, artifacts ? &*artifacts : nullptr);
  if (artifacts && logging::infoEnabled()) {
    logging::info("skopec: artifact cache at %s: front-end %s",
                  artifacts->store().root().c_str(),
                  fw->frontend()->artifactProvenance().c_str());
  }
  MachineModel machine = core::machineByName(args.get("machine"));
  hotspot::SelectionCriteria criteria{args.getDouble("coverage"),
                                      args.getDouble("leanness")};
  auto topN = static_cast<size_t>(args.getUint64("top"));

  if (args.getBool("skeleton")) {
    std::fputs(skel::printSkeleton(fw->skeleton()).c_str(), stdout);
    return 0;
  }
  if (args.getBool("bet")) {
    std::fputs(bet::printBet(fw->bet()).c_str(), stdout);
    return 0;
  }

  // Resolve the roofline's miss-ratio source (--cache-model). Both predictive
  // models print their per-level prediction so a co-design session can see
  // what the projection is built on.
  roofline::RooflineParams rparams{};
  std::string cacheModelName = args.get("cache-model");
  std::optional<trace::CachePrediction> pred;
  if (cacheModelName == "layer-cond") {
    cachemodel::LayerConditionModel lc(fw->program(), fw->frontend()->bet(),
                                       fw->params());
    const auto& st = lc.stats();
    std::printf("layer-cond: %zu groups, %zu affine / %zu indirect / %zu opaque "
                "refs, %.1f%% of the dynamic stream modeled\n",
                st.groups, st.affineRefs, st.indirectRefs, st.opaqueRefs,
                st.modeledFraction() * 100);
    if (lc.usable()) {
      pred = lc.evaluate(machine);
    } else if (fw->frontend()->memoryTrace().usable()) {
      std::printf("layer-cond: coverage too low, falling back to reuse-dist\n");
      cacheModelName = "reuse-dist";
    } else {
      std::printf("layer-cond: coverage too low and no trace recorded, keeping "
                  "constant roofline parameters\n");
    }
  }
  if (cacheModelName == "reuse-dist") {
    const trace::MemoryTrace& mt = fw->frontend()->memoryTrace();
    if (!mt.usable()) {
      throw Error("cache-model=reuse-dist needs a usable memory trace "
                  "(raise --max-ops or use --cache-model=layer-cond)");
    }
    int threads = static_cast<int>(args.getInt("threads", 0, 4096));
    if (threads == 0) {
      threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    }
    std::unique_ptr<trace::ReuseCacheHook> reuseHook;
    if (artifacts) {
      reuseHook = artifacts->makeReuseHook(fw->frontend()->artifactKey());
    }
    trace::CacheModel cm(mt, threads, cancel, reuseHook.get());
    pred = cm.evaluate(machine);
  }
  if (pred) {
    rparams.l1MissRatio = pred->l1MissRate;
    rparams.dramMissRatio = pred->l1MissRate * pred->llcMissRate;
    std::printf("%s prediction on %s: L1 hit %.2f%%, LLC hit %.2f%% "
                "(%llu references)\n",
                cacheModelName.c_str(), machine.name.c_str(),
                (1 - pred->l1MissRate) * 100, (1 - pred->llcMissRate) * 100,
                static_cast<unsigned long long>(pred->accesses));
  }

  if (args.getBool("compare")) {
    auto analysis = fw->analyze(machine, criteria);
    std::fputs(analysis.summary(topN).c_str(), stdout);
  } else {
    auto model = fw->project(machine, rparams);
    auto ranking = hotspot::rankingFromModel(model);
    std::printf("projected hot spots on %s (total %.4f s, no simulation run):\n",
                machine.name.c_str(), model.totalSeconds);
    report::Table t({"#", "block", "time%", "ENR", "bound"});
    for (size_t i = 0; i < topN && i < ranking.size(); ++i) {
      const auto& bc = model.blocks.at(ranking[i].origin);
      t.addRow({std::to_string(i + 1), bc.label, format("%.2f%%", bc.fraction * 100),
                format("%.4g", bc.enr),
                bc.tmSeconds > bc.tcSeconds ? "memory" : "compute"});
    }
    std::fputs(t.str().c_str(), stdout);
  }

  if (args.getBool("hotpath")) {
    std::fputs(fw->hotPathReport(machine, criteria).c_str(), stdout);
  }

  if (!args.get("scaling").empty()) {
    int maxNodes = static_cast<int>(args.getInt("scaling", 1, 1 << 20));
    roofline::HaloDecomposition halo;
    halo.totalCells = args.getDouble("cells");
    halo.stepsPerRun = static_cast<int>(args.getInt("steps", 1, 1 << 20));
    halo.fields = 4;
    std::vector<int> counts;
    for (int n = 1; n <= maxNodes; n *= 2) counts.push_back(n);
    auto model = fw->project(machine, rparams);
    auto scaling = roofline::projectStrongScaling(model, machine, halo, counts);
    std::printf("\nstrong-scaling projection (%s network):\n", machine.name.c_str());
    report::Table t({"nodes", "compute s", "comm s", "total s", "speedup", "efficiency"});
    for (const auto& p : scaling) {
      t.addRow({std::to_string(p.nodes), format("%.5f", p.computeSeconds),
                format("%.5f", p.commSeconds), format("%.5f", p.totalSeconds),
                format("%.1fx", p.speedup), format("%.0f%%", p.parallelEfficiency * 100)});
    }
    std::fputs(t.str().c_str(), stdout);
    int crossover = roofline::commDominanceCrossover(scaling);
    if (crossover > 0) {
      std::printf("communication dominates from %d nodes on.\n", crossover);
    }
  }

  if (telem.enabled()) {
    auto mfmt = args.get("metrics-format") == "prom" ? telemetry::MetricsFormat::Prom
                                                     : telemetry::MetricsFormat::Json;
    telemetry::writeExports(telem, tracePath, metricsPath, "", mfmt);
    if (!tracePath.empty()) logging::info("skopec: wrote %s", tracePath.c_str());
    if (!metricsPath.empty()) logging::info("skopec: wrote %s", metricsPath.c_str());
    if (logging::debugEnabled()) {
      std::fputs(telemetry::selfHotSpotTable(telem).c_str(), stderr);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skopec: %s\n", e.what());
    return 1;
  }
}
