#!/usr/bin/env python3
"""Fail CI on broken intra-repo markdown links.

Scans README.md and docs/*.md for markdown links and image references,
resolves every relative target against the repo root (anchors and external
URLs are skipped), and exits nonzero listing each target that does not
exist. Links with an anchor (``FILE.md#section``) are checked for the file
only — section names are free to change.

Usage: python3 tools/check_docs_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

# [text](target) — stop at the first unescaped ')'; markdown titles
# ("[t](x \"title\")") are split off below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def doc_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def check_file(path: Path, root: Path):
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append((lineno, match.group(1)))
            elif root.resolve() not in resolved.parents and resolved != root.resolve():
                broken.append((lineno, match.group(1) + " (escapes the repo)"))
    return broken


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for doc in doc_files(root):
        if not doc.exists():
            continue
        checked += 1
        for lineno, target in check_file(doc, root):
            print(f"{doc.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"OK: {checked} markdown file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
