// Hardware design-space exploration — the "co-design" use case of the title.
//
// Starting from the BG/Q node description, this example sweeps conceptual
// design knobs (memory bandwidth, SIMD width via peak flops, cache latency)
// and asks, for the SORD earthquake code, purely analytically:
//   * how does total projected runtime move?
//   * which code block is the top hot spot under each design?
//   * does the top spot flip from compute-bound to memory-bound?
// No simulation of the conceptual machines is ever run — exactly the
// workflow the paper proposes for early design-space pruning.
//
// Build & run:  ./build/examples/codesign_sweep
#include <cstdio>

#include "core/framework.h"
#include "report/table.h"
#include "support/text.h"

using namespace skope;

namespace {

struct DesignPoint {
  std::string name;
  MachineModel machine;
};

void evaluate(core::CodesignFramework& fw, const std::vector<DesignPoint>& designs) {
  report::Table t({"design", "projected time", "speedup", "top hot spot", "bottleneck"});
  double baseline = 0;
  for (const auto& d : designs) {
    auto model = fw.project(d.machine);
    if (baseline == 0) baseline = model.totalSeconds;

    // find the top block and classify its bottleneck
    const roofline::BlockCost* top = nullptr;
    for (const auto& [origin, bc] : model.blocks) {
      if (!top || bc.seconds > top->seconds) top = &bc;
    }
    std::string bottleneck = "-";
    if (top) {
      bottleneck = top->tmSeconds > top->tcSeconds ? "memory" : "compute";
    }
    t.addRow({d.name, format("%.4f s", model.totalSeconds),
              format("%.2fx", baseline / model.totalSeconds),
              top ? top->label : "-", bottleneck});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main() {
  core::CodesignFramework fw(workloads::sord());

  std::printf("SORD on conceptual machines derived from the BG/Q node\n"
              "(analytic projection only — no simulator runs):\n\n");

  std::vector<DesignPoint> designs;
  designs.push_back({"baseline BG/Q", MachineModel::bgq()});

  MachineModel bw2 = MachineModel::bgq();
  bw2.name = "BG/Q 2x-BW";
  bw2.memBandwidthGBs *= 2;
  designs.push_back({"2x memory bandwidth", bw2});

  MachineModel fastMem = MachineModel::bgq();
  fastMem.name = "BG/Q fast-mem";
  fastMem.memLatencyCycles /= 2;
  fastMem.llc.latencyCycles /= 2;
  designs.push_back({"halved memory/LLC latency", fastMem});

  MachineModel wide = MachineModel::bgq();
  wide.name = "BG/Q wide";
  wide.issueWidth = 4;
  wide.peakFlopsPerCyclePerCore *= 2;
  designs.push_back({"2x issue width + flops", wide});

  MachineModel both = wide;
  both.name = "BG/Q wide+BW";
  both.memBandwidthGBs *= 2;
  both.memLatencyCycles /= 2;
  designs.push_back({"wide core + fast memory", both});

  evaluate(fw, designs);

  std::printf("reading: if the 'wide core' design barely moves the projection but\n"
              "'fast memory' does, the workload's hot spots are memory-bound and\n"
              "silicon is better spent on the memory system — the co-design call\n"
              "the paper's framework is built to answer early.\n");
  return 0;
}
