// Working directly in the skeleton language — no source code at all.
//
// The paper's SKOPE skeletons were originally hand-written; this example
// models a hypothetical pipeline (IO-ish unpack, FFT-ish butterfly, pointwise
// physics, reduction) straight in skeleton text, then projects it on both
// validation machines and prints where the time goes. Useful when the real
// application cannot be compiled but its structure is known.
//
// Build & run:  ./build/examples/skeleton_lab
#include <cstdio>

#include "bet/builder.h"
#include "machine/machine.h"
#include "report/table.h"
#include "roofline/estimate.h"
#include "skeleton/parser.h"
#include "support/text.h"

using namespace skope;

constexpr const char* kSkeleton = R"(
params NGRID, NSTEP, LOGN;

def main() @1 {
  call unpack(NGRID);
  loop @2 iter=NSTEP {
    call transform(NGRID, LOGN);
    call physics(NGRID);
    call reduce(NGRID);
  }
}

# strided unpack: one load+store per element, almost no flops
def unpack(n) @10 {
  loop @11 iter=n {
    comp @12 iops=2 loads=1 stores=1;
  }
}

# butterfly transform: log2(n) passes, each pass data-parallel across cores
def transform(n, stages) @20 {
  loop @21 iter=stages {
    loop parallel @22 iter=n/2 {
      comp @23 flops=10 iops=4 loads=2 stores=2;
    }
  }
}

# pointwise physics with an occasional expensive correction
def physics(n) @30 {
  loop @31 iter=n {
    comp @32 flops=14 loads=3 stores=1;
    branch @33 p=0.02 {
      libcall exp;
      comp @34 flops=30 fpdivs=2 loads=2 stores=1;
    }
  }
}

def reduce(n) @40 {
  loop @41 iter=n {
    comp @42 flops=2 loads=1;
  }
}
)";

int main() {
  skel::SkeletonProgram sk = skel::parseSkeleton(kSkeleton);
  ParamEnv input({{"NGRID", 1 << 16}, {"NSTEP", 20}, {"LOGN", 16}});

  for (const auto& machine : {MachineModel::bgq(), MachineModel::xeonE5_2420()}) {
    bet::Bet bet = bet::buildBet(sk, input);
    roofline::Roofline model(machine);
    auto result = roofline::estimate(bet, model);

    std::printf("=== %s — projected %.4f s ===\n", machine.name.c_str(),
                result.totalSeconds);
    report::Table t({"block", "time%", "ENR", "Tc/inv (cyc)", "Tm/inv (cyc)", "bound"});

    // rank by share
    std::vector<const roofline::BlockCost*> blocks;
    for (const auto& [origin, bc] : result.blocks) blocks.push_back(&bc);
    std::sort(blocks.begin(), blocks.end(),
              [](auto* a, auto* b) { return a->seconds > b->seconds; });
    for (const auto* bc : blocks) {
      if (bc->fraction < 0.005) continue;
      double tc = bc->enr > 0 ? bc->tcSeconds / bc->enr * machine.freqGHz * 1e9 : 0;
      double tm = bc->enr > 0 ? bc->tmSeconds / bc->enr * machine.freqGHz * 1e9 : 0;
      t.addRow({bc->label, format("%.1f%%", bc->fraction * 100), format("%.3g", bc->enr),
                format("%.1f", tc), format("%.1f", tm), tm > tc ? "memory" : "compute"});
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("the same skeleton was projected on both machines with no profiling,\n"
              "no source code and no simulation — pure model evaluation.\n");
  return 0;
}
