// Quickstart: the full co-design pipeline on a small custom workload.
//
//   1. write a MiniC program (the stand-in for your C/Fortran application),
//   2. let the framework profile it locally and build its code skeleton,
//   3. project hot spots for a target machine the code has never run on,
//   4. compare against the ground-truth simulator and print the hot path.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/framework.h"

using namespace skope;

// A toy "application": a stencil sweep plus a data-dependent refinement pass.
constexpr const char* kSource = R"(
param int N = 400;
param int STEPS = 4;

global real grid[N][N];
global real flux[N][N];
global real residual;

func void init() {
  var int i; var int j;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      grid[i][j] = rand();
    }
  }
}

func void stencil() {
  var int i; var int j;
  for (i = 1; i < N - 1; i = i + 1) {
    for (j = 1; j < N - 1; j = j + 1) {
      flux[i][j] = 0.25 * (grid[i - 1][j] + grid[i + 1][j]
                 + grid[i][j - 1] + grid[i][j + 1]) - grid[i][j];
    }
  }
}

func void refine() {
  var int i; var int j;
  for (i = 1; i < N - 1; i = i + 1) {
    for (j = 1; j < N - 1; j = j + 1) {
      if (fabs(flux[i][j]) > 0.2) {
        grid[i][j] = grid[i][j] + 0.5 * flux[i][j] / (1.0 + fabs(flux[i][j]));
      }
    }
  }
}

func real norm() {
  var int i; var int j;
  var real s = 0.0;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) { s = s + flux[i][j] * flux[i][j]; }
  }
  return s;
}

func void main() {
  init();
  var int t;
  for (t = 0; t < STEPS; t = t + 1) {
    stencil();
    refine();
    residual = residual + norm();
  }
}
)";

int main() {
  // Params play the role of the paper's "hint file" describing the input.
  core::CodesignFramework fw("quickstart", kSource, {{"N", 400}, {"STEPS", 4}});

  std::printf("source statements: %zu, skeleton nodes: %zu, BET nodes: %zu\n\n",
              fw.program().countStatements(), fw.skeleton().totalNodes(), fw.bet().size());

  // Project hot spots on BG/Q and validate against the ground-truth simulator.
  hotspot::SelectionCriteria criteria{0.90, 0.45};
  auto analysis = fw.analyze(MachineModel::bgq(), criteria);
  std::printf("%s\n", analysis.summary(6).c_str());

  // Where do the hot spots live in the execution flow?
  std::printf("%s\n", fw.hotPathReport(MachineModel::bgq(), criteria).c_str());

  // The same skeleton projects onto any machine — no re-profiling needed.
  auto xeon = fw.analyze(MachineModel::xeonE5_2420(), criteria);
  std::printf("on %s the model-selected spots cover %.1f%% of measured time "
              "(quality %.1f%%)\n",
              xeon.machineName.c_str(), xeon.quality.modelCoverage * 100,
              xeon.quality.quality * 100);
  return 0;
}
