// Mini-application extraction — the co-design workflow the paper's intro
// motivates: given a full application, find the hot path on the target
// machine and emit a *reduced skeleton* containing only the hot spots and
// the control flow reaching them, ready to seed a benchmark/mini-app.
//
// Build & run:  ./build/examples/miniapp_extract
#include <cstdio>
#include <set>

#include "core/framework.h"
#include "hotpath/hotpath.h"
#include "skeleton/printer.h"

using namespace skope;

namespace {

// Prunes a skeleton to the functions/loops present on the hot path.
// Returns the kept skeleton nodes as freshly built defs.
skel::SkeletonProgram pruneToHotPath(const skel::SkeletonProgram& sk,
                                     const std::set<uint32_t>& keepOrigins) {
  skel::SkeletonProgram out;
  out.params = sk.params;

  // keep a def if any node in its subtree is on the hot path
  std::function<bool(const skel::SkNode&)> touches = [&](const skel::SkNode& n) {
    if (keepOrigins.count(n.origin)) return true;
    for (const auto& k : n.kids) {
      if (touches(*k)) return true;
    }
    for (const auto& k : n.elseKids) {
      if (touches(*k)) return true;
    }
    return false;
  };

  std::function<skel::SkNodeUP(const skel::SkNode&)> clone =
      [&](const skel::SkNode& n) -> skel::SkNodeUP {
    auto copy = std::make_unique<skel::SkNode>();
    copy->kind = n.kind;
    copy->origin = n.origin;
    copy->name = n.name;
    copy->formals = n.formals;
    copy->iter = n.iter;
    copy->prob = n.prob;
    copy->value = n.value;
    copy->args = n.args;
    copy->count = n.count;
    copy->builtinIndex = n.builtinIndex;
    copy->metrics = n.metrics;
    for (const auto& k : n.kids) {
      // keep comps (they are the hot work) and anything leading to hot code
      if (k->kind == skel::SkKind::Comp || touches(*k)) copy->kids.push_back(clone(*k));
    }
    for (const auto& k : n.elseKids) {
      if (k->kind == skel::SkKind::Comp || touches(*k)) copy->elseKids.push_back(clone(*k));
    }
    return copy;
  };

  for (const auto& d : sk.defs) {
    if (touches(*d)) out.defs.push_back(clone(*d));
  }
  return out;
}

}  // namespace

int main() {
  core::CodesignFramework fw(workloads::cfd());
  MachineModel machine = MachineModel::bgq();
  hotspot::SelectionCriteria criteria{0.90, 0.45};

  // 1. hot spots + hot path on the target machine
  auto model = fw.project(machine);
  auto ranking = hotspot::rankingFromModel(model);
  auto selection = hotspot::selectHotSpots(ranking, fw.module().totalStaticInstrs(), criteria);
  auto path = hotpath::extractHotPath(fw.bet(), selection);

  std::printf("CFD hot path on %s (%zu hot-spot instances):\n\n%s\n", machine.name.c_str(),
              path.hotSpotInstances, hotpath::printHotPath(path, &fw.module()).c_str());

  // 2. collect the origins on the path and prune the skeleton to them
  std::set<uint32_t> keep;
  std::function<void(const hotpath::HotPathNode&)> collect =
      [&](const hotpath::HotPathNode& n) {
        keep.insert(n.node->origin);
        for (const auto& k : n.kids) collect(*k);
      };
  if (path.root) collect(*path.root);

  skel::SkeletonProgram mini = pruneToHotPath(fw.skeleton(), keep);
  std::printf("--- extracted mini-app skeleton (%zu of %zu nodes kept) ---\n\n%s\n",
              mini.totalNodes(), fw.skeleton().totalNodes(),
              skel::printSkeleton(mini).c_str());

  std::printf("the emitted skeleton keeps every loop bound, branch probability and\n"
              "instruction mix of the hot region — enough to regenerate a faithful\n"
              "benchmark or feed another modeling tool.\n");
  return 0;
}
