# Empty compiler generated dependencies file for skope_minic.
# This may be replaced when dependencies are built.
