file(REMOVE_RECURSE
  "CMakeFiles/skope_minic.dir/minic/ast.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/ast.cpp.o.d"
  "CMakeFiles/skope_minic.dir/minic/builtins.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/builtins.cpp.o.d"
  "CMakeFiles/skope_minic.dir/minic/lexer.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/lexer.cpp.o.d"
  "CMakeFiles/skope_minic.dir/minic/parser.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/parser.cpp.o.d"
  "CMakeFiles/skope_minic.dir/minic/printer.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/printer.cpp.o.d"
  "CMakeFiles/skope_minic.dir/minic/sema.cpp.o"
  "CMakeFiles/skope_minic.dir/minic/sema.cpp.o.d"
  "libskope_minic.a"
  "libskope_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
