
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/ast.cpp" "src/CMakeFiles/skope_minic.dir/minic/ast.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/ast.cpp.o.d"
  "/root/repo/src/minic/builtins.cpp" "src/CMakeFiles/skope_minic.dir/minic/builtins.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/builtins.cpp.o.d"
  "/root/repo/src/minic/lexer.cpp" "src/CMakeFiles/skope_minic.dir/minic/lexer.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/lexer.cpp.o.d"
  "/root/repo/src/minic/parser.cpp" "src/CMakeFiles/skope_minic.dir/minic/parser.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/parser.cpp.o.d"
  "/root/repo/src/minic/printer.cpp" "src/CMakeFiles/skope_minic.dir/minic/printer.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/printer.cpp.o.d"
  "/root/repo/src/minic/sema.cpp" "src/CMakeFiles/skope_minic.dir/minic/sema.cpp.o" "gcc" "src/CMakeFiles/skope_minic.dir/minic/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
