file(REMOVE_RECURSE
  "libskope_minic.a"
)
