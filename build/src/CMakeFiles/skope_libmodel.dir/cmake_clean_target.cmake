file(REMOVE_RECURSE
  "libskope_libmodel.a"
)
