file(REMOVE_RECURSE
  "CMakeFiles/skope_libmodel.dir/libmodel/libmodel.cpp.o"
  "CMakeFiles/skope_libmodel.dir/libmodel/libmodel.cpp.o.d"
  "libskope_libmodel.a"
  "libskope_libmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_libmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
