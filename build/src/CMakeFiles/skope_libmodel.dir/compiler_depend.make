# Empty compiler generated dependencies file for skope_libmodel.
# This may be replaced when dependencies are built.
