file(REMOVE_RECURSE
  "libskope_translate.a"
)
