file(REMOVE_RECURSE
  "CMakeFiles/skope_translate.dir/translate/annotate.cpp.o"
  "CMakeFiles/skope_translate.dir/translate/annotate.cpp.o.d"
  "CMakeFiles/skope_translate.dir/translate/translate.cpp.o"
  "CMakeFiles/skope_translate.dir/translate/translate.cpp.o.d"
  "libskope_translate.a"
  "libskope_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
