# Empty compiler generated dependencies file for skope_translate.
# This may be replaced when dependencies are built.
