
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/builtins.cpp" "src/CMakeFiles/skope_vm.dir/vm/builtins.cpp.o" "gcc" "src/CMakeFiles/skope_vm.dir/vm/builtins.cpp.o.d"
  "/root/repo/src/vm/bytecode.cpp" "src/CMakeFiles/skope_vm.dir/vm/bytecode.cpp.o" "gcc" "src/CMakeFiles/skope_vm.dir/vm/bytecode.cpp.o.d"
  "/root/repo/src/vm/compiler.cpp" "src/CMakeFiles/skope_vm.dir/vm/compiler.cpp.o" "gcc" "src/CMakeFiles/skope_vm.dir/vm/compiler.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/CMakeFiles/skope_vm.dir/vm/interp.cpp.o" "gcc" "src/CMakeFiles/skope_vm.dir/vm/interp.cpp.o.d"
  "/root/repo/src/vm/profile.cpp" "src/CMakeFiles/skope_vm.dir/vm/profile.cpp.o" "gcc" "src/CMakeFiles/skope_vm.dir/vm/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
