file(REMOVE_RECURSE
  "CMakeFiles/skope_vm.dir/vm/builtins.cpp.o"
  "CMakeFiles/skope_vm.dir/vm/builtins.cpp.o.d"
  "CMakeFiles/skope_vm.dir/vm/bytecode.cpp.o"
  "CMakeFiles/skope_vm.dir/vm/bytecode.cpp.o.d"
  "CMakeFiles/skope_vm.dir/vm/compiler.cpp.o"
  "CMakeFiles/skope_vm.dir/vm/compiler.cpp.o.d"
  "CMakeFiles/skope_vm.dir/vm/interp.cpp.o"
  "CMakeFiles/skope_vm.dir/vm/interp.cpp.o.d"
  "CMakeFiles/skope_vm.dir/vm/profile.cpp.o"
  "CMakeFiles/skope_vm.dir/vm/profile.cpp.o.d"
  "libskope_vm.a"
  "libskope_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
