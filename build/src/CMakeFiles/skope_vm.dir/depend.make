# Empty dependencies file for skope_vm.
# This may be replaced when dependencies are built.
