file(REMOVE_RECURSE
  "libskope_vm.a"
)
