# Empty dependencies file for skope_skeleton.
# This may be replaced when dependencies are built.
