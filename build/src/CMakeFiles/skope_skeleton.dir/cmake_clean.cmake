file(REMOVE_RECURSE
  "CMakeFiles/skope_skeleton.dir/skeleton/parser.cpp.o"
  "CMakeFiles/skope_skeleton.dir/skeleton/parser.cpp.o.d"
  "CMakeFiles/skope_skeleton.dir/skeleton/printer.cpp.o"
  "CMakeFiles/skope_skeleton.dir/skeleton/printer.cpp.o.d"
  "CMakeFiles/skope_skeleton.dir/skeleton/skeleton.cpp.o"
  "CMakeFiles/skope_skeleton.dir/skeleton/skeleton.cpp.o.d"
  "libskope_skeleton.a"
  "libskope_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
