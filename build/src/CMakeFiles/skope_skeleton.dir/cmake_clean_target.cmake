file(REMOVE_RECURSE
  "libskope_skeleton.a"
)
