file(REMOVE_RECURSE
  "libskope_machine.a"
)
