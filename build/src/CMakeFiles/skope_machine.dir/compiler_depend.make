# Empty compiler generated dependencies file for skope_machine.
# This may be replaced when dependencies are built.
