file(REMOVE_RECURSE
  "CMakeFiles/skope_machine.dir/machine/cache.cpp.o"
  "CMakeFiles/skope_machine.dir/machine/cache.cpp.o.d"
  "CMakeFiles/skope_machine.dir/machine/machine.cpp.o"
  "CMakeFiles/skope_machine.dir/machine/machine.cpp.o.d"
  "libskope_machine.a"
  "libskope_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
