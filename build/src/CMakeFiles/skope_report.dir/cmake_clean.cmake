file(REMOVE_RECURSE
  "CMakeFiles/skope_report.dir/report/chart.cpp.o"
  "CMakeFiles/skope_report.dir/report/chart.cpp.o.d"
  "CMakeFiles/skope_report.dir/report/table.cpp.o"
  "CMakeFiles/skope_report.dir/report/table.cpp.o.d"
  "libskope_report.a"
  "libskope_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
