file(REMOVE_RECURSE
  "libskope_report.a"
)
