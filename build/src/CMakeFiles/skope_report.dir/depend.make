# Empty dependencies file for skope_report.
# This may be replaced when dependencies are built.
