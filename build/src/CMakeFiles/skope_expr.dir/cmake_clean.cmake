file(REMOVE_RECURSE
  "CMakeFiles/skope_expr.dir/expr/expr.cpp.o"
  "CMakeFiles/skope_expr.dir/expr/expr.cpp.o.d"
  "libskope_expr.a"
  "libskope_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
