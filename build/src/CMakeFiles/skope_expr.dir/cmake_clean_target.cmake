file(REMOVE_RECURSE
  "libskope_expr.a"
)
