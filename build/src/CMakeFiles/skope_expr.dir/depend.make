# Empty dependencies file for skope_expr.
# This may be replaced when dependencies are built.
