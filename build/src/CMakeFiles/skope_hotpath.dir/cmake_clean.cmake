file(REMOVE_RECURSE
  "CMakeFiles/skope_hotpath.dir/hotpath/hotpath.cpp.o"
  "CMakeFiles/skope_hotpath.dir/hotpath/hotpath.cpp.o.d"
  "libskope_hotpath.a"
  "libskope_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
