# Empty dependencies file for skope_hotpath.
# This may be replaced when dependencies are built.
