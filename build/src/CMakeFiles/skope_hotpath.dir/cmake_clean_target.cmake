file(REMOVE_RECURSE
  "libskope_hotpath.a"
)
