file(REMOVE_RECURSE
  "CMakeFiles/skope_bet.dir/bet/bet.cpp.o"
  "CMakeFiles/skope_bet.dir/bet/bet.cpp.o.d"
  "CMakeFiles/skope_bet.dir/bet/builder.cpp.o"
  "CMakeFiles/skope_bet.dir/bet/builder.cpp.o.d"
  "CMakeFiles/skope_bet.dir/bet/context.cpp.o"
  "CMakeFiles/skope_bet.dir/bet/context.cpp.o.d"
  "libskope_bet.a"
  "libskope_bet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_bet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
