# Empty compiler generated dependencies file for skope_bet.
# This may be replaced when dependencies are built.
