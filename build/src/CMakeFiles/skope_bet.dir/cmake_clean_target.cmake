file(REMOVE_RECURSE
  "libskope_bet.a"
)
