
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bet/bet.cpp" "src/CMakeFiles/skope_bet.dir/bet/bet.cpp.o" "gcc" "src/CMakeFiles/skope_bet.dir/bet/bet.cpp.o.d"
  "/root/repo/src/bet/builder.cpp" "src/CMakeFiles/skope_bet.dir/bet/builder.cpp.o" "gcc" "src/CMakeFiles/skope_bet.dir/bet/builder.cpp.o.d"
  "/root/repo/src/bet/context.cpp" "src/CMakeFiles/skope_bet.dir/bet/context.cpp.o" "gcc" "src/CMakeFiles/skope_bet.dir/bet/context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
