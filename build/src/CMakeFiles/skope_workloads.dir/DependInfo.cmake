
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cfd.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/cfd.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/cfd.cpp.o.d"
  "/root/repo/src/workloads/chargei.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/chargei.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/chargei.cpp.o.d"
  "/root/repo/src/workloads/sord.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/sord.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/sord.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/srad.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/srad.cpp.o.d"
  "/root/repo/src/workloads/stassuij.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/stassuij.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/stassuij.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/skope_workloads.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/skope_workloads.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
