file(REMOVE_RECURSE
  "CMakeFiles/skope_workloads.dir/workloads/cfd.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/cfd.cpp.o.d"
  "CMakeFiles/skope_workloads.dir/workloads/chargei.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/chargei.cpp.o.d"
  "CMakeFiles/skope_workloads.dir/workloads/sord.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/sord.cpp.o.d"
  "CMakeFiles/skope_workloads.dir/workloads/srad.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/srad.cpp.o.d"
  "CMakeFiles/skope_workloads.dir/workloads/stassuij.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/stassuij.cpp.o.d"
  "CMakeFiles/skope_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/skope_workloads.dir/workloads/workloads.cpp.o.d"
  "libskope_workloads.a"
  "libskope_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
