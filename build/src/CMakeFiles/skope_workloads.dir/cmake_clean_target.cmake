file(REMOVE_RECURSE
  "libskope_workloads.a"
)
