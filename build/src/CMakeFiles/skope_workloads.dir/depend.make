# Empty dependencies file for skope_workloads.
# This may be replaced when dependencies are built.
