
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/skope_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/skope_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/profile_report.cpp" "src/CMakeFiles/skope_sim.dir/sim/profile_report.cpp.o" "gcc" "src/CMakeFiles/skope_sim.dir/sim/profile_report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/skope_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/skope_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/vectorize.cpp" "src/CMakeFiles/skope_sim.dir/sim/vectorize.cpp.o" "gcc" "src/CMakeFiles/skope_sim.dir/sim/vectorize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
