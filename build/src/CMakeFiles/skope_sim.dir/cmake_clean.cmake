file(REMOVE_RECURSE
  "CMakeFiles/skope_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/skope_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/skope_sim.dir/sim/profile_report.cpp.o"
  "CMakeFiles/skope_sim.dir/sim/profile_report.cpp.o.d"
  "CMakeFiles/skope_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/skope_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/skope_sim.dir/sim/vectorize.cpp.o"
  "CMakeFiles/skope_sim.dir/sim/vectorize.cpp.o.d"
  "libskope_sim.a"
  "libskope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
