# Empty compiler generated dependencies file for skope_sim.
# This may be replaced when dependencies are built.
