file(REMOVE_RECURSE
  "libskope_sim.a"
)
