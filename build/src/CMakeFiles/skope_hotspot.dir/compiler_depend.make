# Empty compiler generated dependencies file for skope_hotspot.
# This may be replaced when dependencies are built.
