file(REMOVE_RECURSE
  "CMakeFiles/skope_hotspot.dir/hotspot/hotspot.cpp.o"
  "CMakeFiles/skope_hotspot.dir/hotspot/hotspot.cpp.o.d"
  "CMakeFiles/skope_hotspot.dir/hotspot/quality.cpp.o"
  "CMakeFiles/skope_hotspot.dir/hotspot/quality.cpp.o.d"
  "libskope_hotspot.a"
  "libskope_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
