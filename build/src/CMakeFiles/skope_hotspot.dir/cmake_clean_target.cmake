file(REMOVE_RECURSE
  "libskope_hotspot.a"
)
