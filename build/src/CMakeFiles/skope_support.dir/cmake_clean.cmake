file(REMOVE_RECURSE
  "CMakeFiles/skope_support.dir/support/argparse.cpp.o"
  "CMakeFiles/skope_support.dir/support/argparse.cpp.o.d"
  "CMakeFiles/skope_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/skope_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/skope_support.dir/support/rng.cpp.o"
  "CMakeFiles/skope_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/skope_support.dir/support/text.cpp.o"
  "CMakeFiles/skope_support.dir/support/text.cpp.o.d"
  "libskope_support.a"
  "libskope_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
