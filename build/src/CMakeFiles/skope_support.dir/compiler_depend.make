# Empty compiler generated dependencies file for skope_support.
# This may be replaced when dependencies are built.
