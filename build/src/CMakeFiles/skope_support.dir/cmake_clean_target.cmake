file(REMOVE_RECURSE
  "libskope_support.a"
)
