file(REMOVE_RECURSE
  "libskope_roofline.a"
)
