file(REMOVE_RECURSE
  "CMakeFiles/skope_roofline.dir/roofline/estimate.cpp.o"
  "CMakeFiles/skope_roofline.dir/roofline/estimate.cpp.o.d"
  "CMakeFiles/skope_roofline.dir/roofline/multinode.cpp.o"
  "CMakeFiles/skope_roofline.dir/roofline/multinode.cpp.o.d"
  "CMakeFiles/skope_roofline.dir/roofline/roofline.cpp.o"
  "CMakeFiles/skope_roofline.dir/roofline/roofline.cpp.o.d"
  "libskope_roofline.a"
  "libskope_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
