
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roofline/estimate.cpp" "src/CMakeFiles/skope_roofline.dir/roofline/estimate.cpp.o" "gcc" "src/CMakeFiles/skope_roofline.dir/roofline/estimate.cpp.o.d"
  "/root/repo/src/roofline/multinode.cpp" "src/CMakeFiles/skope_roofline.dir/roofline/multinode.cpp.o" "gcc" "src/CMakeFiles/skope_roofline.dir/roofline/multinode.cpp.o.d"
  "/root/repo/src/roofline/roofline.cpp" "src/CMakeFiles/skope_roofline.dir/roofline/roofline.cpp.o" "gcc" "src/CMakeFiles/skope_roofline.dir/roofline/roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skope_bet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/skope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
