# Empty compiler generated dependencies file for skope_roofline.
# This may be replaced when dependencies are built.
