file(REMOVE_RECURSE
  "CMakeFiles/skope_core.dir/core/framework.cpp.o"
  "CMakeFiles/skope_core.dir/core/framework.cpp.o.d"
  "libskope_core.a"
  "libskope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
