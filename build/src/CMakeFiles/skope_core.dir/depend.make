# Empty dependencies file for skope_core.
# This may be replaced when dependencies are built.
