file(REMOVE_RECURSE
  "libskope_core.a"
)
