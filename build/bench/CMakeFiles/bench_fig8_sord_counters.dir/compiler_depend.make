# Empty compiler generated dependencies file for bench_fig8_sord_counters.
# This may be replaced when dependencies are built.
