file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sord_hotpath.dir/bench_fig9_sord_hotpath.cpp.o"
  "CMakeFiles/bench_fig9_sord_hotpath.dir/bench_fig9_sord_hotpath.cpp.o.d"
  "bench_fig9_sord_hotpath"
  "bench_fig9_sord_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sord_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
