# Empty compiler generated dependencies file for bench_fig9_sord_hotpath.
# This may be replaced when dependencies are built.
