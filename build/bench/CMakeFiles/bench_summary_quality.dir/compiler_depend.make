# Empty compiler generated dependencies file for bench_summary_quality.
# This may be replaced when dependencies are built.
