file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_quality.dir/bench_summary_quality.cpp.o"
  "CMakeFiles/bench_summary_quality.dir/bench_summary_quality.cpp.o.d"
  "bench_summary_quality"
  "bench_summary_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
