# Empty dependencies file for bench_fig11_srad.
# This may be replaced when dependencies are built.
