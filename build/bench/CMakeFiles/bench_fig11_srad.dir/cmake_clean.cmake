file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_srad.dir/bench_fig11_srad.cpp.o"
  "CMakeFiles/bench_fig11_srad.dir/bench_fig11_srad.cpp.o.d"
  "bench_fig11_srad"
  "bench_fig11_srad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_srad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
