file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_chargei.dir/bench_fig12_chargei.cpp.o"
  "CMakeFiles/bench_fig12_chargei.dir/bench_fig12_chargei.cpp.o.d"
  "bench_fig12_chargei"
  "bench_fig12_chargei.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_chargei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
