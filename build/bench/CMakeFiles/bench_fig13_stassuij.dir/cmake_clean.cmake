file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_stassuij.dir/bench_fig13_stassuij.cpp.o"
  "CMakeFiles/bench_fig13_stassuij.dir/bench_fig13_stassuij.cpp.o.d"
  "bench_fig13_stassuij"
  "bench_fig13_stassuij.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_stassuij.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
