# Empty dependencies file for bench_bet_size.
# This may be replaced when dependencies are built.
