file(REMOVE_RECURSE
  "CMakeFiles/bench_bet_size.dir/bench_bet_size.cpp.o"
  "CMakeFiles/bench_bet_size.dir/bench_bet_size.cpp.o.d"
  "bench_bet_size"
  "bench_bet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
