file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cfd.dir/bench_fig10_cfd.cpp.o"
  "CMakeFiles/bench_fig10_cfd.dir/bench_fig10_cfd.cpp.o.d"
  "bench_fig10_cfd"
  "bench_fig10_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
