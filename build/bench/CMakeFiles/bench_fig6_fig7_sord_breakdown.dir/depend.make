# Empty dependencies file for bench_fig6_fig7_sord_breakdown.
# This may be replaced when dependencies are built.
