file(REMOVE_RECURSE
  "CMakeFiles/skopec.dir/skopec.cpp.o"
  "CMakeFiles/skopec.dir/skopec.cpp.o.d"
  "skopec"
  "skopec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skopec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
