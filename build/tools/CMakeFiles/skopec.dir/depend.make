# Empty dependencies file for skopec.
# This may be replaced when dependencies are built.
