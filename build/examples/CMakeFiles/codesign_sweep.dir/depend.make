# Empty dependencies file for codesign_sweep.
# This may be replaced when dependencies are built.
