# Empty dependencies file for miniapp_extract.
# This may be replaced when dependencies are built.
