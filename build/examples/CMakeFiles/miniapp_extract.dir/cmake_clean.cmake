file(REMOVE_RECURSE
  "CMakeFiles/miniapp_extract.dir/miniapp_extract.cpp.o"
  "CMakeFiles/miniapp_extract.dir/miniapp_extract.cpp.o.d"
  "miniapp_extract"
  "miniapp_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniapp_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
