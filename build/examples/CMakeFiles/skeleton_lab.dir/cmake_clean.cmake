file(REMOVE_RECURSE
  "CMakeFiles/skeleton_lab.dir/skeleton_lab.cpp.o"
  "CMakeFiles/skeleton_lab.dir/skeleton_lab.cpp.o.d"
  "skeleton_lab"
  "skeleton_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
