# Empty compiler generated dependencies file for skeleton_lab.
# This may be replaced when dependencies are built.
