# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_minic[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_skeleton[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_bet[1]_include.cmake")
include("/root/repo/build/tests/test_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_hotspot[1]_include.cmake")
include("/root/repo/build/tests/test_hotpath[1]_include.cmake")
include("/root/repo/build/tests/test_libmodel[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_depth[1]_include.cmake")
