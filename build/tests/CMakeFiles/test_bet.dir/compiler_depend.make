# Empty compiler generated dependencies file for test_bet.
# This may be replaced when dependencies are built.
