file(REMOVE_RECURSE
  "CMakeFiles/test_bet.dir/test_bet.cpp.o"
  "CMakeFiles/test_bet.dir/test_bet.cpp.o.d"
  "test_bet"
  "test_bet.pdb"
  "test_bet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
