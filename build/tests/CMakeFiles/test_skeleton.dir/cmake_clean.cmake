file(REMOVE_RECURSE
  "CMakeFiles/test_skeleton.dir/test_skeleton.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_skeleton.cpp.o.d"
  "test_skeleton"
  "test_skeleton.pdb"
  "test_skeleton[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
