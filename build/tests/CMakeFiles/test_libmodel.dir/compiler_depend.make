# Empty compiler generated dependencies file for test_libmodel.
# This may be replaced when dependencies are built.
