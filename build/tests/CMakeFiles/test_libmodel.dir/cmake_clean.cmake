file(REMOVE_RECURSE
  "CMakeFiles/test_libmodel.dir/test_libmodel.cpp.o"
  "CMakeFiles/test_libmodel.dir/test_libmodel.cpp.o.d"
  "test_libmodel"
  "test_libmodel.pdb"
  "test_libmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
