file(REMOVE_RECURSE
  "CMakeFiles/test_translate.dir/test_translate.cpp.o"
  "CMakeFiles/test_translate.dir/test_translate.cpp.o.d"
  "test_translate"
  "test_translate.pdb"
  "test_translate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
